module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree

type t = {
  id : int;
  tree : Block_tree.t;
  mutable orphans : Block.t list;
  mutable best : Block.t;
}

let create ?tie_break ~id () =
  {
    id;
    tree = Block_tree.create ?tie_break ();
    orphans = [];
    best = Block.genesis;
  }

let id t = t.id

let clone t ~id =
  {
    id;
    tree = Block_tree.copy t.tree;
    orphans = t.orphans;
    best = t.best;
  }

let refresh_best t = t.best <- Block_tree.best_tip t.tree

(* Repeatedly retry orphans until a fixed point: a delivered batch may
   connect a whole dangling subtree at once. *)
let drain_orphans t =
  let progress = ref true in
  while !progress && t.orphans <> [] do
    let still_orphans, inserted =
      List.fold_left
        (fun (orphans, inserted) b ->
          match Block_tree.insert t.tree b with
          | `Inserted | `Duplicate -> (orphans, inserted + 1)
          | `Orphan -> (b :: orphans, inserted))
        ([], 0) t.orphans
    in
    t.orphans <- still_orphans;
    progress := inserted > 0
  done

let receive t blocks =
  let sorted =
    List.sort (fun (a : Block.t) (b : Block.t) -> compare a.height b.height) blocks
  in
  List.iter
    (fun b ->
      match Block_tree.insert t.tree b with
      | `Inserted | `Duplicate -> ()
      | `Orphan -> t.orphans <- b :: t.orphans)
    sorted;
  drain_orphans t;
  refresh_best t

let best_tip t = t.best
let chain_length t = t.best.Block.height

let extend_tip t ~round ~nonce =
  let block =
    Block.mine ~parent:t.best ~miner:t.id ~miner_class:Block.Honest ~round
      ~nonce ~payload:""
  in
  (match Block_tree.insert t.tree block with
  | `Inserted -> ()
  | `Duplicate | `Orphan -> assert false);
  refresh_best t;
  block

let view t = t.tree
let orphan_count t = List.length t.orphans
