(** Round-by-round execution traces: record, render, parse, diff.

    A trace is the per-round skeleton of an execution — enough to replay
    an experiment's dynamics in a log, to golden-test determinism, and to
    eyeball where an attack struck.  The text format is line-oriented:

    {v
    # nakamoto trace v1
    round honest_blocks adversary_blocks releases best_height reorg_depth
    1 0 1 0 0 0
    2 2 0 0 1 0
    ...
    v}

    Fields are space-separated decimal integers; lines starting with [#]
    are comments. *)

type entry = {
  round : int;
  honest_blocks : int;  (** honest blocks mined this round *)
  adversary_blocks : int;  (** adversarial successes this round *)
  releases : int;  (** adversarial release messages issued this round *)
  best_height : int;  (** maximum honest chain height after the round *)
  reorg_depth : int;  (** deepest rollback any miner performed this round *)
}

type t

val create : unit -> t
val record : t -> entry -> unit
(** [record t e] appends; rounds must be recorded in increasing order.
    @raise Invalid_argument otherwise. *)

val length : t -> int
val entries : t -> entry list
(** Chronological. *)

val to_string : t -> string
(** Render in the v1 text format. *)

val of_string : string -> t
(** Parse the v1 format.
    @raise Failure on malformed input (wrong header, field count, or
    non-numeric fields). *)

val equal : t -> t -> bool

val digest : t -> int64
(** [digest t] hash-chains every field of every entry through SplitMix64 —
    a 64-bit fingerprint of the whole trace.  Golden tests pin a single
    digest instead of an embedded trace dump; {!equal} traces have equal
    digests, and any field drift anywhere in the run moves the digest. *)

val capture : Config.t -> t
(** [capture config] runs an instrumented execution and records every
    round.  The result is deterministic in [config.seed]: equal configs
    give {!equal} traces. *)

val summarize : t -> string
(** One-paragraph human summary: rounds, totals, max reorg, final
    height. *)
