type config = { lambda : float; mu : float; delta : float }

let validate c =
  if not (c.lambda > 0. && Float.is_finite c.lambda) then
    invalid_arg "Poisson: lambda must be positive";
  if not (c.mu > 0. && c.mu <= 1.) then
    invalid_arg "Poisson: mu must lie in (0, 1]";
  if not (c.delta > 0. && Float.is_finite c.delta) then
    invalid_arg "Poisson: delta must be positive"

let isolated_rate c =
  validate c;
  let honest = c.lambda *. c.mu in
  honest *. exp (-2. *. honest *. c.delta)

let adversary_rate c =
  validate c;
  c.lambda *. (1. -. c.mu)

let consistency_margin c =
  validate c;
  if c.mu = 1. then infinity
  else log (isolated_rate c) -. log (adversary_rate c)

let neat_bound_equivalent c =
  validate c;
  if c.mu = 1. then true
  else begin
    let nu = 1. -. c.mu in
    let cc = 1. /. (c.lambda *. c.delta) in
    let margin_positive = consistency_margin c > 0. in
    let neat_positive = cc > 2. *. c.mu /. log (c.mu /. nu) in
    margin_positive = neat_positive
  end

type run = {
  horizon : float;
  arrivals : int;
  honest_arrivals : int;
  isolated_honest : int;
  adversary_arrivals : int;
}

let exponential rng ~rate =
  (* Inverse transform; 1 - u avoids log 0. *)
  -.log (1. -. Nakamoto_prob.Rng.float rng) /. rate

let simulate ~rng c ~horizon =
  validate c;
  if not (horizon > 0. && Float.is_finite horizon) then
    invalid_arg "Poisson.simulate: horizon must be positive";
  let arrivals = ref 0 in
  let honest_arrivals = ref 0 in
  let adversary_arrivals = ref 0 in
  let isolated = ref 0 in
  (* Stream honest arrival times; an honest arrival is isolated when both
     neighbouring honest arrivals are more than delta away.  Track the
     previous two honest times and decide for the middle one once the next
     arrives; the final honest arrival is decided at the horizon. *)
  let prev = ref neg_infinity in
  let mid = ref None in
  let decide_mid ~next =
    match !mid with
    | Some m ->
      if m -. !prev > c.delta && next -. m > c.delta then incr isolated;
      prev := m
    | None -> ()
  in
  let t = ref 0. in
  let continue = ref true in
  while !continue do
    t := !t +. exponential rng ~rate:c.lambda;
    if !t > horizon then continue := false
    else begin
      incr arrivals;
      if Nakamoto_prob.Rng.bernoulli rng ~p:c.mu then begin
        incr honest_arrivals;
        decide_mid ~next:!t;
        mid := Some !t
      end
      else incr adversary_arrivals
    end
  done;
  (* Final pending honest arrival: treat the empty stretch beyond the
     horizon as silence (a one-arrival boundary effect, negligible over
     long horizons). *)
  decide_mid ~next:(horizon +. c.delta +. 1.);
  {
    horizon;
    arrivals = !arrivals;
    honest_arrivals = !honest_arrivals;
    isolated_honest = !isolated;
    adversary_arrivals = !adversary_arrivals;
  }

let discrete_rate_per_time ~p ~n ~mu ~delta_rounds =
  if not (p > 0. && p < 1.) then
    invalid_arg "Poisson.discrete_rate_per_time: p outside (0, 1)";
  if n < 1. then invalid_arg "Poisson.discrete_rate_per_time: n < 1";
  if not (mu > 0. && mu <= 1.) then
    invalid_arg "Poisson.discrete_rate_per_time: mu outside (0, 1]";
  if delta_rounds < 1 then
    invalid_arg "Poisson.discrete_rate_per_time: delta_rounds < 1";
  let log_abar = mu *. n *. Float.log1p (-.p) in
  let log_alpha1 = log (p *. mu *. n) +. (((mu *. n) -. 1.) *. Float.log1p (-.p)) in
  exp ((2. *. float_of_int delta_rounds *. log_abar) +. log_alpha1)
