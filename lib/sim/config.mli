(** Simulation configuration and derived quantities.

    Ties the protocol parameters of Table I to concrete simulator inputs.
    The adversary controls [floor (nu * n)] of the [n] miners; the paper's
    worst case (the adversary always at its cap, Section III) is the only
    case simulated. *)

type mining_mode =
  | Exact
      (** one H-query per honest miner per round and [nu n] sequential
          adversary queries, every message enqueued per recipient —
          bit-for-bit the historical executor, and the default *)
  | Aggregate
      (** the paper-scale fast path: per-round block counts are drawn
          from the same binomial laws the queries realize (honest
          winners chosen by partial Fisher–Yates, so the round outcome
          is distribution-identical), broadcasts ride the shared Δ-ring
          lane, and only miners whose view ever diverges from the crowd
          (winners and direct-send recipients) are materialized.  Round
          cost is O(blocks mined + messages due) instead of O(n).
          Requires a recipient-independent delay policy ([Immediate],
          [Fixed] or [Maximal]) *)
  | Skip
      (** the O(events) path on top of [Aggregate]: the executor never
          iterates empty rounds.  It samples the gap to the next
          block-bearing round from Geometric(1 - (1-p)^(honest + adv))
          jointly with the conditional success counts, fast-forwards the
          Δ-ring, the adversary and the convergence pattern across the
          span in O(1), and simulates only rounds where blocks appear or
          deliveries fall due.  Distribution-identical to [Aggregate]
          (not bit-identical: the RNG is consumed per event, not per
          round); [on_round] fires only for simulated rounds.  Same
          delay-policy restriction as [Aggregate], enforced as a typed
          {!Incompatible} error at {!validate} time *)

exception Incompatible of { mode : mining_mode; reason : string }
(** Raised by {!validate} when a mining mode cannot faithfully execute
    the configuration (rather than silently degrading) — currently
    [Skip] with a delay policy that needs per-round inspection
    ([Uniform_random] or [Per_recipient], whether from [delay_override]
    or the strategy's default, e.g. [Balance]). *)

type t = {
  n : int;  (** total miners; the paper requires [n >= 4] *)
  nu : float;  (** adversarial fraction; the paper requires [0 <= nu < 1/2] *)
  p : float;  (** per-query success probability *)
  delta : int;  (** maximum message delay, [>= 1] *)
  rounds : int;  (** execution length *)
  seed : int64;  (** master PRNG seed *)
  strategy : Adversary.strategy;
  snapshot_interval : int;  (** record per-miner tips every this many rounds *)
  truncate : int;  (** the [T] used in consistency checks *)
  delay_override : Nakamoto_net.Network.delay_policy option;
      (** force a message-delay policy instead of the strategy's default —
          e.g. [Some Maximal] with an [Idle] adversary isolates the pure
          network-delay effect on chain growth *)
  tie_break : Nakamoto_chain.Block_tree.tie_break;
      (** honest miners' equal-height chain-selection rule;
          [Prefer_honest] realizes the Eyal-Sirer gamma = 0 regime,
          [First_seen] gives a withholding attacker the races its releases
          reach first (gamma > 0) *)
  mining_mode : mining_mode;
      (** executor fast-path selection; [Exact] unless asked otherwise *)
}

val validate : t -> unit
(** @raise Invalid_argument on any out-of-range field.  [nu = 0.] is
    allowed (pure honest run) even though the paper's theorems assume
    [nu > 0].
    @raise Incompatible when [mining_mode] cannot execute the
    configuration faithfully (see {!Incompatible}). *)

val adversary_count : t -> int
(** [floor (nu * n)]. *)

val honest_count : t -> int
(** [n - adversary_count]. *)

val mu : t -> float
(** Realized honest fraction [honest_count / n] (differs from [1 - nu]
    only by rounding). *)

val c : t -> float
(** [c t = 1 / (p * n * delta)] — the paper's central ratio. *)

val with_c : t -> c:float -> t
(** [with_c t ~c] adjusts [p] so that the configuration has the given [c].
    @raise Invalid_argument if the implied [p] leaves (0, 1]. *)

val state_process_config : t -> State_process.config
(** The matching fast-path configuration. *)

val default : t
(** A small, fast baseline: [n = 40], [nu = 0.25], [delta = 4],
    [c = 2.5], 4000 rounds, idle adversary, seed 42, [Exact] mining. *)
