module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree
module Hash = Nakamoto_chain.Hash

type consistency_report = {
  truncate : int;
  pairs_checked : int;
  violations : int;
  worst_violation_depth : int;
}

(* The meet (deepest common ancestor) of all tips in a snapshot. *)
let snapshot_meet god (snap : Execution.snapshot) =
  match Array.to_list snap.tips with
  | [] -> Block.genesis
  | first :: rest ->
    List.fold_left
      (fun meet tip ->
        let h = Block_tree.common_prefix_height god meet tip in
        Block_tree.ancestor_at_height god meet ~height:h)
      first rest

(* Hash of every ancestor of [b], indexed by height — turns repeated
   "is X an ancestor of b" queries into array lookups. *)
let hash_chain god (b : Block.t) =
  let chain = Array.make (b.height + 1) b.hash in
  let rec fill (b : Block.t) =
    chain.(b.height) <- b.hash;
    if b.height > 0 then fill (Block_tree.find_exn god b.parent)
  in
  fill b;
  chain

let check_consistency ?truncate (result : Execution.result) =
  let truncate =
    match truncate with Some t -> t | None -> result.config.Config.truncate
  in
  if truncate < 0 then invalid_arg "Metrics.check_consistency: negative truncate";
  let god = result.god_view in
  let snaps = Array.of_list result.snapshots in
  let meets = Array.map (snapshot_meet god) snaps in
  let meet_chains = Array.map (hash_chain god) meets in
  let pairs = ref 0 in
  let violations = ref 0 in
  let worst = ref 0 in
  Array.iteri
    (fun ri snap_r ->
      (* Each r-tip's height-[keep] ancestor is shared across all s. *)
      let truncated_tips =
        Array.map
          (fun (tip : Block.t) ->
            let keep = tip.height - truncate in
            if keep <= 0 then None
            else Some (Block_tree.ancestor_at_height god tip ~height:keep))
          snap_r.Execution.tips
      in
      for si = ri to Array.length snaps - 1 do
        let meet_s = meets.(si) in
        let chain_s = meet_chains.(si) in
        Array.iter
          (fun truncated ->
            incr pairs;
            (* Prefix of the meet covers every player j at s; the truncated
               r-chain is a prefix iff its hash sits at its height in the
               meet's ancestor chain. *)
            match truncated with
            | None -> ()
            | Some (cut : Block.t) ->
              let ok =
                cut.height <= meet_s.Block.height
                && Hash.equal chain_s.(cut.height) cut.hash
              in
              if not ok then begin
                incr violations;
                (* Depth of the failure: how far below the cut the chains
                   actually agree. *)
                let rec agreed (b : Block.t) =
                  if
                    b.height <= meet_s.Block.height
                    && Hash.equal chain_s.(b.height) b.hash
                  then b.height
                  else agreed (Block_tree.find_exn god b.parent)
                in
                let depth = cut.height - agreed cut in
                if depth > !worst then worst := depth
              end)
          truncated_tips
      done)
    snaps;
  {
    truncate;
    pairs_checked = !pairs;
    violations = !violations;
    worst_violation_depth = !worst;
  }

let max_disagreement (result : Execution.result) =
  let god = result.god_view in
  List.fold_left
    (fun acc (snap : Execution.snapshot) ->
      let tips = snap.tips in
      let worst = ref acc in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if j > i then begin
                let d = Block_tree.divergence god a b in
                if d > !worst then worst := d
              end)
            tips)
        tips;
      !worst)
    0 result.snapshots

type growth_report = { final_height : int; rounds : int; growth_rate : float }

let chain_growth (result : Execution.result) =
  let final_height =
    Array.fold_left
      (fun acc (tip : Block.t) -> min acc tip.height)
      max_int result.final_tips
  in
  let final_height = if final_height = max_int then 0 else final_height in
  let rounds = result.config.Config.rounds in
  {
    final_height;
    rounds;
    growth_rate =
      (if rounds = 0 then 0. else float_of_int final_height /. float_of_int rounds);
  }

let chain_quality (result : Execution.result) =
  if Array.length result.final_tips = 0 then 1.
  else Block_tree.honest_fraction_on_chain result.god_view result.final_tips.(0)

let agreed_prefix_height (result : Execution.result) snap =
  (snapshot_meet result.god_view snap).Block.height
