(** Streaming detection of convergence opportunities.

    A convergence opportunity completes at round [t] when the state series
    matches [H N^{>=Delta} H1 N^Delta] ending at [t] (the [C_F||P] state
    [HN^{>=Delta} || H1 N^Delta] of Section V-A): an [H 1] round preceded by
    at least [Delta] consecutive [N] rounds (themselves preceded by some
    earlier H), followed by [Delta] more [N] rounds.  At that point every
    honest player agrees on the single longest chain.

    The streaming counter runs in O(1) time and O(1) space per round;
    {!count_by_rescan} is the obviously-correct O(rounds * Delta)
    implementation kept as the property-test oracle (ablation #5 in
    DESIGN.md). *)

type t

val create : delta:int -> t
(** @raise Invalid_argument if [delta < 1]. *)

val observe : t -> Round_state.t -> unit
(** [observe t s] feeds the next round's state. *)

val observe_empty : t -> rounds:int -> unit
(** [observe_empty t ~rounds] feeds [rounds] consecutive [N] rounds in
    O(1) — the skip executor's bulk advance across a block-free span.
    Equivalent to calling [observe t N] that many times; at most one
    armed opportunity can complete inside the span, and its true
    completion round is reported by {!last_count_round}.
    @raise Invalid_argument on negative [rounds]. *)

val count : t -> int
(** [count t] is the number of convergence opportunities completed so far. *)

val last_count_round : t -> int
(** [last_count_round t] is the round at which the most recent convergence
    opportunity completed, or [0] if none has.  With {!observe_empty} a
    completion can fall strictly inside a skipped span; this reports its
    true round so telemetry's convergence-gap histogram stays exact. *)

val rounds_seen : t -> int

val observe_all : t -> Round_state.t array -> unit
(** [observe_all t states] feeds a whole trace. *)

val count_by_rescan : delta:int -> Round_state.t array -> int
(** [count_by_rescan ~delta states] recounts by explicit window scanning
    over the full trace (indices are rounds [1..length]).
    @raise Invalid_argument if [delta < 1]. *)
