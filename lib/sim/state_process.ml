module Binomial = Nakamoto_prob.Binomial

type config = { honest : int; adversarial : int; p : float; delta : int }

let validate c =
  if c.honest <= 0 then invalid_arg "State_process: honest must be positive";
  if c.adversarial < 0 then
    invalid_arg "State_process: adversarial must be nonnegative";
  if not (Nakamoto_numerics.Special.is_probability c.p) then
    invalid_arg "State_process: p must be a probability";
  if c.delta < 1 then invalid_arg "State_process: delta must be >= 1"

type run = {
  rounds : int;
  convergence_opportunities : int;
  adversary_blocks : int;
  h_rounds : int;
  h1_rounds : int;
  honest_blocks : int;
}

let distributions c =
  ( Binomial.create ~trials:c.honest ~p:c.p,
    Binomial.create ~trials:c.adversarial ~p:c.p )

let run ~rng c ~rounds =
  validate c;
  if rounds < 0 then invalid_arg "State_process.run: negative rounds";
  let honest_dist, adv_dist = distributions c in
  let pattern = Pattern.create ~delta:c.delta in
  let adversary_blocks = ref 0 in
  let h_rounds = ref 0 in
  let h1_rounds = ref 0 in
  let honest_blocks = ref 0 in
  for _ = 1 to rounds do
    let h = Binomial.sample rng honest_dist in
    let a = Binomial.sample rng adv_dist in
    adversary_blocks := !adversary_blocks + a;
    honest_blocks := !honest_blocks + h;
    if h > 0 then incr h_rounds;
    if h = 1 then incr h1_rounds;
    Pattern.observe pattern (Round_state.of_block_count h)
  done;
  {
    rounds;
    convergence_opportunities = Pattern.count pattern;
    adversary_blocks = !adversary_blocks;
    h_rounds = !h_rounds;
    h1_rounds = !h1_rounds;
    honest_blocks = !honest_blocks;
  }

let run_trace ~rng c ~rounds =
  validate c;
  if rounds < 0 then invalid_arg "State_process.run_trace: negative rounds";
  let honest_dist, _ = distributions c in
  Array.init rounds (fun _ ->
      Round_state.of_block_count (Binomial.sample rng honest_dist))

let window_counts ~rng c ~windows ~window_length =
  validate c;
  if windows < 0 then invalid_arg "State_process.window_counts: negative windows";
  if window_length <= 0 then
    invalid_arg "State_process.window_counts: window_length must be positive";
  let honest_dist, adv_dist = distributions c in
  let pattern = Pattern.create ~delta:c.delta in
  Array.init windows (fun _ ->
      let before = Pattern.count pattern in
      let adv = ref 0 in
      for _ = 1 to window_length do
        let h = Binomial.sample rng honest_dist in
        adv := !adv + Binomial.sample rng adv_dist;
        Pattern.observe pattern (Round_state.of_block_count h)
      done;
      (Pattern.count pattern - before, !adv))
