(** The bare mining state process, without any network machinery.

    Each round draws the honest block count from [binom(honest, p)] and the
    adversarial block count from [binom(adversarial, p)] — exactly the laws
    the paper's Markov analysis is built on (Eqs. 7–9, 27).  This fast path
    validates the stationary theory (Eq. 44) and the concentration claims
    (Ineqs. 19–20) at volumes the full protocol simulator cannot reach. *)

type config = {
  honest : int;  (** number of honest miners, [mu * n] *)
  adversarial : int;  (** number of corrupted miners, [nu * n] *)
  p : float;  (** per-query success probability *)
  delta : int;  (** the network delay bound, >= 1 *)
}

val validate : config -> unit
(** @raise Invalid_argument when any field is out of range. *)

type run = {
  rounds : int;
  convergence_opportunities : int;  (** the paper's [C(t0, t0+T-1)] *)
  adversary_blocks : int;  (** the paper's [A(t0, t0+T-1)] *)
  h_rounds : int;  (** rounds with at least one honest block *)
  h1_rounds : int;  (** rounds with exactly one honest block *)
  honest_blocks : int;  (** total honest blocks mined *)
}

val run : rng:Nakamoto_prob.Rng.t -> config -> rounds:int -> run
(** [run ~rng config ~rounds] simulates [rounds] rounds and tallies.
    @raise Invalid_argument if [rounds < 0] or the config is invalid. *)

val run_trace :
  rng:Nakamoto_prob.Rng.t -> config -> rounds:int -> Round_state.t array
(** [run_trace ~rng config ~rounds] returns the raw state series (for
    oracle recounts and window experiments). *)

val window_counts :
  rng:Nakamoto_prob.Rng.t -> config -> windows:int -> window_length:int ->
  (int * int) array
(** [window_counts ~rng config ~windows ~window_length] simulates
    [windows] back-to-back windows of [window_length] rounds over one
    continuous trajectory and returns per-window
    [(convergence_opportunities, adversary_blocks)] — the samples behind
    the concentration experiment (each window plays the role of
    [t0 .. t0+T-1]).  Pattern context carries across window boundaries, as
    it does for the stationary chain. *)
