(** Per-round honest mining outcomes — the paper's detailed state alphabet.

    A round is [N] when no honest miner solved the puzzle, or [H k] when
    exactly [k >= 1] did (Detailed-State-Set, Eq. 38).  The coarse state of
    the suffix chain collapses every [H k] to [H]. *)

type t = N | H of int  (** [H k] requires [k >= 1] *)

val of_block_count : int -> t
(** [of_block_count k] classifies a round in which honest miners produced
    [k] blocks.  @raise Invalid_argument on negative [k]. *)

val is_h : t -> bool
val is_h1 : t -> bool
(** [is_h1 t] holds exactly for [H 1] — the only state that can open a
    convergence opportunity. *)

val block_count : t -> int
val to_char : t -> char
(** ['N'], ['1'] for [H 1], ['H'] for [H k] with [k >= 2] — used in trace
    dumps. *)

val equal : t -> t -> bool
