(** Minimal character-grid plotting for terminal figures.

    Used to render Figure 1 (and ad-hoc sweeps) directly in the bench and
    example output without any graphics dependency.  Supports multiple
    series, optional log-scaled x axis, and per-series glyphs. *)

type series = {
  label : string;
  glyph : char;
  points : (float * float) list;  (** (x, y) pairs; non-finite points are skipped *)
}

type axis_scale = Linear | Log10

val plot :
  ?width:int ->
  ?height:int ->
  ?x_scale:axis_scale ->
  ?y_scale:axis_scale ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** [plot ~title ~x_label ~y_label series] renders the series on a
    [width * height] grid (defaults 72 x 20) with framed axes, min/max
    tick annotations, and a legend.  Log scales drop non-positive
    coordinates.  Returns the multi-line string.
    @raise Invalid_argument if no series contributes a plottable point. *)
