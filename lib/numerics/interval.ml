type t = { lo : float; hi : float }

let valid x = not (Float.is_nan x)

let make ~lo ~hi =
  if not (valid lo && valid hi) then invalid_arg "Interval.make: NaN endpoint";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point x =
  if not (valid x) then invalid_arg "Interval.point: NaN";
  { lo = x; hi = x }

let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let contains t x = t.lo <= x && x <= t.hi

(* One-ulp outward widening: the nearest-rounded result of a primitive
   operation is within one ulp of the true result. *)
let down x = if Float.is_finite x then Float.pred x else x
let up x = if Float.is_finite x then Float.succ x else x
let widen lo hi = { lo = down lo; hi = up hi }

let add a b = widen (a.lo +. b.lo) (a.hi +. b.hi)
let sub a b = widen (a.lo -. b.hi) (a.hi -. b.lo)

let mul a b =
  let products = [ a.lo *. b.lo; a.lo *. b.hi; a.hi *. b.lo; a.hi *. b.hi ] in
  widen
    (List.fold_left Float.min infinity products)
    (List.fold_left Float.max neg_infinity products)

let div a b =
  if b.lo <= 0. && b.hi >= 0. then
    invalid_arg "Interval.div: divisor contains zero";
  let quotients = [ a.lo /. b.lo; a.lo /. b.hi; a.hi /. b.lo; a.hi /. b.hi ] in
  widen
    (List.fold_left Float.min infinity quotients)
    (List.fold_left Float.max neg_infinity quotients)

let neg a = { lo = -.a.hi; hi = -.a.lo }

let exp a =
  (* exp is nonnegative; widening a subnormal-or-zero lower endpoint with
     Float.pred would produce a negative lo, poisoning any downstream
     division — clamp at the true mathematical floor. *)
  let w = widen (Stdlib.exp a.lo) (Stdlib.exp a.hi) in
  { w with lo = Float.max 0. w.lo }

let log a =
  if a.lo <= 0. then invalid_arg "Interval.log: requires a strictly positive interval";
  widen (Stdlib.log a.lo) (Stdlib.log a.hi)

let log1p a =
  if a.lo <= -1. then
    invalid_arg "Interval.log1p: requires an interval strictly above -1";
  widen (Stdlib.log1p a.lo) (Stdlib.log1p a.hi)

let pow a e =
  if Float.is_nan e || e < 0. then
    invalid_arg "Interval.pow: exponent must be a nonnegative float";
  if a.lo < 0. then
    invalid_arg "Interval.pow: base interval must be nonnegative";
  (* x^e is monotone nondecreasing on x >= 0 for e >= 0, so the endpoint
     images bracket the range.  libm's pow is the one primitive here
     without a universal correct-rounding guarantee, so widen two ulps
     instead of one; like [exp], clamp the floor at the true 0. *)
  let w = widen (down (a.lo ** e)) (up (a.hi ** e)) in
  { w with lo = Float.max 0. w.lo }

let clamp ~lo:l ~hi:h a =
  if not (valid l && valid h) then invalid_arg "Interval.clamp: NaN bound";
  if l > h then invalid_arg "Interval.clamp: lo > hi";
  (* min/max are exact (no rounding), so no widening: this mirrors
     Special.clamp applied to any value in [a]. *)
  let clamp1 x = Float.min h (Float.max l x) in
  { lo = clamp1 a.lo; hi = clamp1 a.hi }

let one_minus x = sub (point 1.) x
let strictly_positive t = t.lo > 0.
let strictly_negative t = t.hi < 0.
let pp fmt t = Format.fprintf fmt "[%.17g, %.17g]" t.lo t.hi
