type t = { lo : float; hi : float }

let valid x = not (Float.is_nan x)

let make ~lo ~hi =
  if not (valid lo && valid hi) then invalid_arg "Interval.make: NaN endpoint";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point x =
  if not (valid x) then invalid_arg "Interval.point: NaN";
  { lo = x; hi = x }

let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let contains t x = t.lo <= x && x <= t.hi

(* One-ulp outward widening: the nearest-rounded result of a primitive
   operation is within one ulp of the true result. *)
let down x = if Float.is_finite x then Float.pred x else x
let up x = if Float.is_finite x then Float.succ x else x
let widen lo hi = { lo = down lo; hi = up hi }

let add a b = widen (a.lo +. b.lo) (a.hi +. b.hi)
let sub a b = widen (a.lo -. b.hi) (a.hi -. b.lo)

let mul a b =
  let products = [ a.lo *. b.lo; a.lo *. b.hi; a.hi *. b.lo; a.hi *. b.hi ] in
  widen
    (List.fold_left Float.min infinity products)
    (List.fold_left Float.max neg_infinity products)

let div a b =
  if b.lo <= 0. && b.hi >= 0. then
    invalid_arg "Interval.div: divisor contains zero";
  let quotients = [ a.lo /. b.lo; a.lo /. b.hi; a.hi /. b.lo; a.hi /. b.hi ] in
  widen
    (List.fold_left Float.min infinity quotients)
    (List.fold_left Float.max neg_infinity quotients)

let neg a = { lo = -.a.hi; hi = -.a.lo }
let exp a = widen (Stdlib.exp a.lo) (Stdlib.exp a.hi)

let log a =
  if a.lo <= 0. then invalid_arg "Interval.log: requires a strictly positive interval";
  widen (Stdlib.log a.lo) (Stdlib.log a.hi)

let one_minus x = sub (point 1.) x
let strictly_positive t = t.lo > 0.
let strictly_negative t = t.hi < 0.
let pp fmt t = Format.fprintf fmt "[%.17g, %.17g]" t.lo t.hi
