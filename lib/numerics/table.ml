type cell =
  | Text of string
  | Int of int
  | Float of float
  | Sci of float
  | Log10 of float

type t = {
  title : string;
  columns : string list;
  mutable rows_rev : cell list list;
  mutable count : int;
}

let create ~title ~columns = { title; columns; rows_rev = []; count = 0 }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: arity differs from header";
  t.rows_rev <- cells :: t.rows_rev;
  t.count <- t.count + 1

let row_count t = t.count

let cell_to_string = function
  | Text s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Sci f -> Printf.sprintf "%.4e" f
  | Log10 lnat ->
    (* A natural-log value rendered as a power of ten, e.g. -145.1 -> 1e-63. *)
    if lnat = neg_infinity then "0"
    else Printf.sprintf "1e%+.2f" (lnat /. log 10.)

let rows t = List.rev t.rows_rev

let render t =
  let header = t.columns in
  let body = List.map (List.map cell_to_string) (rows t) in
  let all = header :: body in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i s -> widths.(i) <- max widths.(i) (String.length s))
        row)
    all;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let render_row row =
    let padded = List.mapi pad row in
    (* Trailing spaces from padding the last column are unwanted. *)
    String.concat "  " padded |> String.trim
  in
  let rule =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    body;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map csv_escape row));
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  List.iter (fun row -> emit (List.map cell_to_string row)) (rows t);
  Buffer.contents buf

let save_csv t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))
