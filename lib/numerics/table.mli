(** Column-aligned text tables and CSV emission.

    Every reproduced paper table/figure is ultimately a [Table.t]: the bench
    harness renders it for the terminal, the examples also dump CSV so the
    series can be re-plotted elsewhere. *)

type cell =
  | Text of string
  | Int of int
  | Float of float  (** rendered with [%.6g] *)
  | Sci of float  (** rendered with [%.4e] *)
  | Log10 of float  (** a log-domain (natural-log) value rendered as 10^x *)

type t

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] is an empty table with the given header. *)

val add_row : t -> cell list -> unit
(** [add_row t cells] appends a row.
    @raise Invalid_argument if the arity differs from the header. *)

val row_count : t -> int
(** [row_count t] is the number of data rows added so far. *)

val render : t -> string
(** [render t] lays the table out with aligned columns, title, and rule
    lines, ready for a terminal. *)

val to_csv : t -> string
(** [to_csv t] is an RFC-4180-ish CSV dump (header + rows; fields containing
    commas or quotes are quoted). *)

val save_csv : t -> path:string -> unit
(** [save_csv t ~path] writes {!to_csv} output to [path]. *)

val cell_to_string : cell -> string
(** [cell_to_string c] is the rendering used by both {!render} and
    {!to_csv}. *)
