(** Interval arithmetic with outward rounding.

    Used to {e certify} the bound inversions: a bisection answer
    [nu_max] is only a float; evaluating the defining inequality over
    intervals that provably contain every rounding error turns "the
    solver says so" into "the sign of the criterion is mathematically
    guaranteed on both sides of the answer".

    OCaml computes in round-to-nearest, so every primitive operation's
    true result lies within one ulp of the computed one; each operation
    here widens its float result by one ulp outward ([Float.pred] /
    [Float.succ]), which makes the enclosures conservative.  Only the
    operations the bound formulas need are provided. *)

type t = private { lo : float; hi : float }

val make : lo:float -> hi:float -> t
(** @raise Invalid_argument unless [lo <= hi] and both are finite-or-inf
    non-NaN. *)

val point : float -> t
(** Degenerate interval (no widening — the float itself is the value
    being reasoned about). *)

val lo : t -> float
val hi : t -> float
val width : t -> float
val contains : t -> float -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Invalid_argument when the divisor interval contains [0.]. *)

val neg : t -> t

val exp : t -> t
(** The lower endpoint is clamped at [0.] after widening (exp is
    nonnegative, and [Float.pred 0.] would otherwise leak a negative
    bound into downstream divisions). *)

val log : t -> t
(** @raise Invalid_argument unless the interval is strictly positive. *)

val log1p : t -> t
(** @raise Invalid_argument unless the interval lies strictly above
    [-1.]. *)

val pow : t -> float -> t
(** [pow a e] encloses [x ** e] for [x] in [a].  Monotone endpoint
    images, widened {e two} ulps (libm [pow] carries no universal
    correct-rounding guarantee), lower endpoint clamped at [0.].
    @raise Invalid_argument unless [a] is nonnegative and [e >= 0.]. *)

val clamp : lo:float -> hi:float -> t -> t
(** Endpoint-wise [Float.min hi (Float.max lo _)] — exact (min/max do
    not round), so no widening; mirrors
    {!Nakamoto_numerics.Special.clamp} applied to any member.
    @raise Invalid_argument on NaN bounds or [lo > hi]. *)

val one_minus : t -> t
(** [one_minus x] is [sub (point 1.) x] — common enough to name. *)

val strictly_positive : t -> bool
(** The {e whole} interval is above zero: the true value is provably
    positive. *)

val strictly_negative : t -> bool

val pp : Format.formatter -> t -> unit
