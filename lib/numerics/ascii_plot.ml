type series = { label : string; glyph : char; points : (float * float) list }
type axis_scale = Linear | Log10

let transform = function
  | Linear -> fun x -> if Float.is_finite x then Some x else None
  | Log10 -> fun x -> if x > 0. && Float.is_finite x then Some (Float.log10 x) else None

let plot ?(width = 72) ?(height = 20) ?(x_scale = Linear) ?(y_scale = Linear)
    ~title ~x_label ~y_label series =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.plot: grid too small";
  let tx = transform x_scale and ty = transform y_scale in
  let projected =
    List.map
      (fun s ->
        let pts =
          List.filter_map
            (fun (x, y) ->
              match (tx x, ty y) with
              | Some px, Some py -> Some (px, py)
              | _ -> None)
            s.points
        in
        (s, pts))
      series
  in
  let all_points = List.concat_map snd projected in
  if all_points = [] then invalid_arg "Ascii_plot.plot: nothing to plot";
  let xs = List.map fst all_points and ys = List.map snd all_points in
  let min_list = List.fold_left Float.min infinity in
  let max_list = List.fold_left Float.max neg_infinity in
  let x_min = min_list xs and x_max = max_list xs in
  let y_min = min_list ys and y_max = max_list ys in
  let pad_range lo hi =
    if hi > lo then (lo, hi)
    else
      let eps = Float.max 1e-9 (Float.abs lo *. 1e-6) in
      (lo -. eps, hi +. eps)
  in
  let x_min, x_max = pad_range x_min x_max in
  let y_min, y_max = pad_range y_min y_max in
  let grid = Array.make_matrix height width ' ' in
  let to_col x =
    int_of_float
      (Float.round ((x -. x_min) /. (x_max -. x_min) *. float_of_int (width - 1)))
  in
  let to_row y =
    (height - 1)
    - int_of_float
        (Float.round
           ((y -. y_min) /. (y_max -. y_min) *. float_of_int (height - 1)))
  in
  List.iter
    (fun (s, pts) ->
      List.iter
        (fun (x, y) ->
          let col = s.glyph in
          let r = to_row y and c = to_col x in
          if r >= 0 && r < height && c >= 0 && c < width then
            grid.(r).(c) <- col)
        pts)
    projected;
  let buf = Buffer.create ((width + 12) * (height + 6)) in
  Buffer.add_string buf (title ^ "\n");
  let untransform scale v =
    match scale with Linear -> v | Log10 -> 10. ** v
  in
  let y_hi_label = Printf.sprintf "%.4g" (untransform y_scale y_max) in
  let y_lo_label = Printf.sprintf "%.4g" (untransform y_scale y_min) in
  let margin = max (String.length y_hi_label) (String.length y_lo_label) in
  let pad_left s =
    String.make (margin - String.length s) ' ' ^ s
  in
  for r = 0 to height - 1 do
    let label =
      if r = 0 then pad_left y_hi_label
      else if r = height - 1 then pad_left y_lo_label
      else String.make margin ' '
    in
    Buffer.add_string buf label;
    Buffer.add_string buf " |";
    Buffer.add_string buf (String.init width (fun c -> grid.(r).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make margin ' ');
  Buffer.add_string buf " +";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  let x_lo_label = Printf.sprintf "%.4g" (untransform x_scale x_min) in
  let x_hi_label = Printf.sprintf "%.4g" (untransform x_scale x_max) in
  let gap =
    max 1 (width - String.length x_lo_label - String.length x_hi_label)
  in
  Buffer.add_string buf (String.make (margin + 2) ' ');
  Buffer.add_string buf x_lo_label;
  Buffer.add_string buf (String.make gap ' ');
  Buffer.add_string buf x_hi_label;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "x: %s%s   y: %s\n" x_label
       (match x_scale with Log10 -> " (log)" | Linear -> "")
       (y_label ^ match y_scale with Log10 -> " (log)" | Linear -> ""));
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  %c  %s\n" s.glyph s.label))
    series;
  Buffer.contents buf
