(** Numerically stable special functions used throughout the analysis.

    The paper's quantities live at extreme scales: with [Delta = 1e13] and
    [p = 1/(c n Delta)], the factor [abar ** (2 * Delta)] underflows any IEEE
    double unless evaluated in the log domain.  This module collects the
    stable primitives every other module builds on. *)

val log1p : float -> float
(** [log1p x] is [log (1. +. x)] computed accurately for small [x]. *)

val expm1 : float -> float
(** [expm1 x] is [exp x -. 1.] computed accurately for small [x]. *)

val log_pow1p : base:float -> exponent:float -> float
(** [log_pow1p ~base ~exponent] is [exponent *. log1p base], i.e.
    [log ((1. +. base) ** exponent)] evaluated stably.  Used for
    [log ((1-p)^(mu*n)) = mu*n*log1p(-p)].
    @raise Invalid_argument if [1. +. base <= 0.]. *)

val log_add : float -> float -> float
(** [log_add la lb] is [log (exp la +. exp lb)] without overflow;
    identity element is [neg_infinity]. *)

val log_sub : float -> float -> float
(** [log_sub la lb] is [log (exp la -. exp lb)].
    @raise Invalid_argument if [lb > la]. *)

val log_sum : float list -> float
(** [log_sum ls] is [log (sum_i (exp ls_i))] via the max-shift trick. *)

val log_one_minus_exp : float -> float
(** [log_one_minus_exp lx] is [log (1. -. exp lx)] for [lx <= 0.], stable
    both for [lx] near [0.] and for very negative [lx].
    @raise Invalid_argument if [lx > 0.]. *)

val logit : float -> float
(** [logit x] is [log (x /. (1. -. x))] for [x] in (0, 1). *)

val sigmoid : float -> float
(** [sigmoid x] is [1. /. (1. +. exp (-.x))], the inverse of {!logit},
    evaluated without overflow for any [x]. *)

val log_binomial_coefficient : int -> int -> float
(** [log_binomial_coefficient n k] is [log (n choose k)] via
    [log_factorial]; exact to double precision for all [n >= 0].
    Returns [neg_infinity] when [k < 0 || k > n]. *)

val log_factorial : int -> float
(** [log_factorial n] is [log n!]; table-driven for [n <= 256], Stirling
    series beyond.  @raise Invalid_argument on negative [n]. *)

val log_gamma : float -> float
(** [log_gamma x] is [log (Gamma x)] for [x > 0]: table-exact at the
    integers covered by {!log_factorial}, Stirling series elsewhere
    (recursing upward for small [x]).
    @raise Invalid_argument unless [x > 0.]. *)

val regularized_gamma_lower : a:float -> x:float -> float
(** [regularized_gamma_lower ~a ~x] is [P(a, x) = gamma(a, x) / Gamma(a)],
    the regularized lower incomplete gamma function — the CDF of a
    Gamma(a, 1) variable, hence of chi-square via
    [P(df/2, stat/2)].  Power series below [x < a + 1], Lentz continued
    fraction beyond; each branch computes its side directly so tiny tail
    values keep relative accuracy.
    @raise Invalid_argument unless [a > 0.] and [x >= 0.]. *)

val regularized_gamma_upper : a:float -> x:float -> float
(** [regularized_gamma_upper ~a ~x] is [Q(a, x) = 1 - P(a, x)] — the
    chi-square survival function via [Q(df/2, stat/2)].
    @raise Invalid_argument under the same conditions. *)

val approx_equal : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [approx_equal ?rtol ?atol a b] holds when
    [abs (a -. b) <= atol +. rtol *. max (abs a) (abs b)].
    Defaults: [rtol = 1e-9], [atol = 1e-12].  [nan] is never equal;
    equal infinities are equal. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to the closed interval [[lo, hi]].
    @raise Invalid_argument if [lo > hi]. *)

val is_probability : float -> bool
(** [is_probability x] holds when [0. <= x && x <= 1.] and [x] is finite. *)

val geometric_series_sum : ratio:float -> terms:int -> float
(** [geometric_series_sum ~ratio ~terms] is [sum_{i=0}^{terms-1} ratio^i],
    computed in closed form as [(1 - ratio^terms) / (1 - ratio)] with the
    [ratio = 1.] limit handled exactly.
    @raise Invalid_argument on negative [terms]. *)
