let log1p = Stdlib.log1p
let expm1 = Stdlib.expm1

let log_pow1p ~base ~exponent =
  if 1. +. base <= 0. then
    invalid_arg "Special.log_pow1p: 1 + base must be positive";
  exponent *. log1p base

let log_add la lb =
  if la = neg_infinity then lb
  else if lb = neg_infinity then la
  else
    let hi = Float.max la lb and lo = Float.min la lb in
    hi +. log1p (exp (lo -. hi))

let log_sub la lb =
  if lb = neg_infinity then la
  else if lb > la then invalid_arg "Special.log_sub: lb > la"
  else if lb = la then neg_infinity
  else la +. log1p (-.exp (lb -. la))

let log_sum ls =
  match List.filter (fun l -> l <> neg_infinity) ls with
  | [] -> neg_infinity
  | ls ->
    let hi = List.fold_left Float.max neg_infinity ls in
    if hi = infinity then infinity
    else
      let acc = List.fold_left (fun acc l -> acc +. exp (l -. hi)) 0. ls in
      hi +. log acc

let log_one_minus_exp lx =
  if lx > 0. then invalid_arg "Special.log_one_minus_exp: lx > 0";
  if lx = 0. then neg_infinity
  else if lx > -.log 2. then log (-.expm1 lx)
  else log1p (-.exp lx)

let logit x =
  if not (x > 0. && x < 1.) then invalid_arg "Special.logit: x outside (0, 1)";
  log (x /. (1. -. x))

let sigmoid x = if x >= 0. then 1. /. (1. +. exp (-.x)) else
    let e = exp x in
    e /. (1. +. e)

(* Exact log-factorials for small n; Stirling's series with three correction
   terms beyond, which is accurate to ~1e-13 relative already at n = 257. *)
let factorial_table_size = 257

let log_factorial_table =
  let t = Array.make factorial_table_size 0. in
  for i = 2 to factorial_table_size - 1 do
    t.(i) <- t.(i - 1) +. log (float_of_int i)
  done;
  t

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument";
  if n < factorial_table_size then log_factorial_table.(n)
  else
    let x = float_of_int n in
    let inv = 1. /. x in
    let inv2 = inv *. inv in
    ((x +. 0.5) *. log x) -. x
    +. (0.5 *. log (2. *. Float.pi))
    +. (inv /. 12.)
    -. (inv *. inv2 /. 360.)
    +. (inv *. inv2 *. inv2 /. 1260.)

let log_binomial_coefficient n k =
  if n < 0 then invalid_arg "Special.log_binomial_coefficient: negative n";
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let approx_equal ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  if Float.is_nan a || Float.is_nan b then false
  else if a = b then true
  else
    Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Special.clamp: lo > hi";
  Float.min hi (Float.max lo x)

(* log Gamma(x) for x > 0: exact via the factorial table at integer x,
   Stirling with the same three correction terms elsewhere (recursing
   upward below x = 10 so the series operates where it converges). *)
let rec log_gamma x =
  if not (x > 0.) then invalid_arg "Special.log_gamma: argument must be > 0";
  if Float.is_integer x && x < float_of_int factorial_table_size then
    log_factorial_table.(int_of_float x - 1)
  else if x < 10. then log_gamma (x +. 1.) -. log x
  else
    let inv = 1. /. x in
    let inv2 = inv *. inv in
    ((x -. 0.5) *. log x) -. x
    +. (0.5 *. log (2. *. Float.pi))
    +. (inv /. 12.)
    -. (inv *. inv2 /. 360.)
    +. (inv *. inv2 *. inv2 /. 1260.)

(* Regularized incomplete gamma P(a, x) and Q(a, x) = 1 - P(a, x): the
   power series for x < a + 1 and the Lentz continued fraction beyond —
   each used only in its region of rapid convergence, and each computing
   the (possibly tiny) function directly rather than via 1-minus. *)
let gamma_series ~a ~x =
  let log_prefactor = (a *. log x) -. x -. log_gamma a in
  let rec go n term sum =
    if Float.abs term <= Float.abs sum *. 1e-16 || n > 10_000 then sum
    else
      let term = term *. x /. (a +. float_of_int n) in
      go (n + 1) term (sum +. term)
  in
  let sum = go 1 (1. /. a) (1. /. a) in
  exp (log_prefactor +. log sum)

let gamma_continued_fraction ~a ~x =
  let log_prefactor = (a *. log x) -. x -. log_gamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) and c = ref (1. /. tiny) in
  let d = ref (1. /. (if !b = 0. then tiny else !b)) in
  let h = ref !d in
  (try
     for i = 1 to 10_000 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       let delta = !d *. !c in
       h := !h *. delta;
       if Float.abs (delta -. 1.) <= 1e-16 then raise Exit
     done
   with Exit -> ());
  exp (log_prefactor +. log !h)

let regularized_gamma_lower ~a ~x =
  if not (a > 0.) then
    invalid_arg "Special.regularized_gamma_lower: a must be > 0";
  if x < 0. then invalid_arg "Special.regularized_gamma_lower: x must be >= 0";
  if x = 0. then 0.
  else if x < a +. 1. then clamp ~lo:0. ~hi:1. (gamma_series ~a ~x)
  else clamp ~lo:0. ~hi:1. (1. -. gamma_continued_fraction ~a ~x)

let regularized_gamma_upper ~a ~x =
  if not (a > 0.) then
    invalid_arg "Special.regularized_gamma_upper: a must be > 0";
  if x < 0. then invalid_arg "Special.regularized_gamma_upper: x must be >= 0";
  if x = 0. then 1.
  else if x < a +. 1. then clamp ~lo:0. ~hi:1. (1. -. gamma_series ~a ~x)
  else clamp ~lo:0. ~hi:1. (gamma_continued_fraction ~a ~x)

let is_probability x = Float.is_finite x && x >= 0. && x <= 1.

let geometric_series_sum ~ratio ~terms =
  if terms < 0 then invalid_arg "Special.geometric_series_sum: negative terms";
  if terms = 0 then 0.
  else if ratio = 1. then float_of_int terms
  else (1. -. (ratio ** float_of_int terms)) /. (1. -. ratio)
