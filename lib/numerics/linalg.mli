(** Small dense linear algebra.

    Sized for the explicit small-[Delta] Markov chains (at most a few
    thousand states); stationary-distribution solves reduce to one LU
    factorization.  Matrices are row-major [float array array]; none of the
    operations mutate their inputs unless the name says so. *)

type matrix = float array array

val make : rows:int -> cols:int -> float -> matrix
(** [make ~rows ~cols x] is a fresh [rows * cols] matrix filled with [x]. *)

val identity : int -> matrix
(** [identity n] is the [n * n] identity matrix. *)

val copy : matrix -> matrix
(** [copy m] is a deep copy of [m]. *)

val dims : matrix -> int * int
(** [dims m] is [(rows, cols)].
    @raise Invalid_argument on ragged input. *)

val transpose : matrix -> matrix
(** [transpose m] is the transposed matrix. *)

val mat_vec : matrix -> float array -> float array
(** [mat_vec m v] is the product [m v].
    @raise Invalid_argument on dimension mismatch. *)

val vec_mat : float array -> matrix -> float array
(** [vec_mat v m] is the row-vector product [v m], the natural orientation
    for distribution-times-transition-matrix updates.
    @raise Invalid_argument on dimension mismatch. *)

val mat_mul : matrix -> matrix -> matrix
(** [mat_mul a b] is the matrix product.
    @raise Invalid_argument on dimension mismatch. *)

val solve : matrix -> float array -> float array
(** [solve a b] solves [a x = b] by LU decomposition with partial pivoting.
    @raise Invalid_argument on dimension mismatch.
    @raise Failure on (numerically) singular [a]. *)

val norm_inf : float array -> float
(** [norm_inf v] is the max-absolute-entry norm. *)

val norm_l1 : float array -> float
(** [norm_l1 v] is the sum of absolute entries. *)

val vec_sub : float array -> float array -> float array
(** [vec_sub a b] is the componentwise difference.
    @raise Invalid_argument on length mismatch. *)

val vec_scale : float -> float array -> float array
(** [vec_scale k v] is [k] times [v], componentwise. *)

val l1_diff : float array -> float array -> float
(** [l1_diff a b] is [norm_l1 (vec_sub a b)] without the intermediate
    array — the residual the sparse iterative solvers track per step.
    @raise Invalid_argument on length mismatch. *)

val max_abs_diff : float array -> float array -> float
(** [max_abs_diff a b] is [norm_inf (vec_sub a b)] without the
    intermediate array, the differential-oracle agreement metric.
    @raise Invalid_argument on length mismatch. *)

val normalize_l1 : float array -> float array
(** [normalize_l1 v] rescales [v] so its entries sum to [1.].
    @raise Invalid_argument if the entry sum is zero or not finite. *)
