(** One-dimensional root finding.

    Every bound inversion in the reproduction ("given [c], what is the
    largest tolerable adversarial fraction [nu]?") is a scalar root-finding
    problem on a monotone function; bisection is the workhorse because the
    functions involved are cheap, monotone, and sometimes barely
    differentiable at the edge of their domain.  Brent's method is provided
    for the well-behaved interiors. *)

type outcome =
  | Converged of { root : float; iterations : int }
      (** The bracket shrank below tolerance around [root]. *)
  | No_sign_change of { lo : float; hi : float; f_lo : float; f_hi : float }
      (** [f] has the same sign at both endpoints; no root is bracketed. *)
  | Max_iterations of { best : float; iterations : int }
      (** Iteration budget exhausted; [best] is the midpoint of the final
          bracket. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> outcome
(** [bisect ~f ~lo ~hi ()] finds a root of [f] in [[lo, hi]] by bisection.
    Requires [lo < hi].  [tol] (default [1e-12]) bounds the final bracket
    width both absolutely and relative to the magnitude of the root.
    An endpoint evaluating exactly to [0.] converges immediately.
    @raise Invalid_argument if [lo >= hi] or either endpoint is not finite. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> outcome
(** [brent ~f ~lo ~hi ()] is Brent's method (inverse quadratic
    interpolation with bisection fallback); same contract as {!bisect} but
    typically an order of magnitude fewer evaluations on smooth functions. *)

val find_root_exn :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** [find_root_exn] is {!brent} unwrapped.
    @raise Failure when the outcome is not [Converged]. *)

val bracket_upward :
  ?factor:float -> ?max_steps:int -> f:(float -> float) -> lo:float ->
  hi0:float -> unit -> (float * float) option
(** [bracket_upward ~f ~lo ~hi0 ()] grows the upper endpoint geometrically
    ([factor], default [2.]) from [hi0] until [f lo] and [f hi] have opposite
    signs, returning the bracket, or [None] after [max_steps] (default 128)
    expansions. *)
