type outcome =
  | Converged of { root : float; iterations : int }
  | No_sign_change of { lo : float; hi : float; f_lo : float; f_hi : float }
  | Max_iterations of { best : float; iterations : int }

let check_bracket lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Roots: bracket endpoints must be finite";
  if lo >= hi then invalid_arg "Roots: requires lo < hi"

let opposite_signs a b = (a <= 0. && b >= 0.) || (a >= 0. && b <= 0.)

let width_converged ~tol lo hi =
  hi -. lo <= tol +. (tol *. Float.max (Float.abs lo) (Float.abs hi))

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  check_bracket lo hi;
  let f_lo = f lo and f_hi = f hi in
  if f_lo = 0. then Converged { root = lo; iterations = 0 }
  else if f_hi = 0. then Converged { root = hi; iterations = 0 }
  else if not (opposite_signs f_lo f_hi) then
    No_sign_change { lo; hi; f_lo; f_hi }
  else
    let rec loop lo hi f_lo iter =
      if width_converged ~tol lo hi then
        Converged { root = 0.5 *. (lo +. hi); iterations = iter }
      else if iter >= max_iter then
        Max_iterations { best = 0.5 *. (lo +. hi); iterations = iter }
      else
        let mid = 0.5 *. (lo +. hi) in
        let f_mid = f mid in
        if f_mid = 0. then Converged { root = mid; iterations = iter + 1 }
        else if opposite_signs f_lo f_mid then loop lo mid f_lo (iter + 1)
        else loop mid hi f_mid (iter + 1)
    in
    loop lo hi f_lo 0

(* Brent's method, following the classic Numerical Recipes formulation:
   [b] is the current best iterate, [a] the previous one, [c] retains the
   bracket counterpoint so that f(b) and f(c) always have opposite signs. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  check_bracket lo hi;
  let f_lo = f lo and f_hi = f hi in
  if f_lo = 0. then Converged { root = lo; iterations = 0 }
  else if f_hi = 0. then Converged { root = hi; iterations = 0 }
  else if not (opposite_signs f_lo f_hi) then
    No_sign_change { lo; hi; f_lo; f_hi }
  else begin
    let a = ref lo and b = ref hi and c = ref hi in
    let fa = ref f_lo and fb = ref f_hi and fc = ref f_hi in
    let d = ref (hi -. lo) and e = ref (hi -. lo) in
    let result = ref None in
    let iter = ref 0 in
    while !result = None && !iter < max_iter do
      incr iter;
      if (!fb > 0. && !fc > 0.) || (!fb < 0. && !fc < 0.) then begin
        c := !a; fc := !fa; d := !b -. !a; e := !d
      end;
      if Float.abs !fc < Float.abs !fb then begin
        a := !b; b := !c; c := !a;
        fa := !fb; fb := !fc; fc := !fa
      end;
      let tol1 =
        (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol)
      in
      let xm = 0.5 *. (!c -. !b) in
      if Float.abs xm <= tol1 || !fb = 0. then
        result := Some (Converged { root = !b; iterations = !iter })
      else begin
        if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
          (* Attempt inverse quadratic interpolation (secant if a = c). *)
          let s = !fb /. !fa in
          let p, q =
            if !a = !c then
              let p = 2. *. xm *. s in
              (p, 1. -. s)
            else
              let q = !fa /. !fc and r = !fb /. !fc in
              let p =
                s *. ((2. *. xm *. q *. (q -. r))
                      -. ((!b -. !a) *. (r -. 1.)))
              in
              (p, (q -. 1.) *. (r -. 1.) *. (s -. 1.))
          in
          let q = if p > 0. then -.q else q in
          let p = Float.abs p in
          let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
          let min2 = Float.abs (!e *. q) in
          if 2. *. p < Float.min min1 min2 then begin
            e := !d; d := p /. q
          end else begin
            d := xm; e := !d
          end
        end else begin
          d := xm; e := !d
        end;
        a := !b; fa := !fb;
        if Float.abs !d > tol1 then b := !b +. !d
        else b := !b +. (if xm >= 0. then tol1 else -.tol1);
        fb := f !b
      end
    done;
    match !result with
    | Some r -> r
    | None -> Max_iterations { best = !b; iterations = !iter }
  end

let find_root_exn ?tol ?max_iter ~f ~lo ~hi () =
  match brent ?tol ?max_iter ~f ~lo ~hi () with
  | Converged { root; _ } -> root
  | No_sign_change { lo; hi; f_lo; f_hi } ->
    failwith
      (Printf.sprintf
         "Roots.find_root_exn: no sign change on [%g, %g] (f = %g, %g)" lo hi
         f_lo f_hi)
  | Max_iterations { best; iterations } ->
    failwith
      (Printf.sprintf
         "Roots.find_root_exn: no convergence after %d iterations (best %g)"
         iterations best)

let bracket_upward ?(factor = 2.) ?(max_steps = 128) ~f ~lo ~hi0 () =
  if factor <= 1. then invalid_arg "Roots.bracket_upward: factor must exceed 1";
  if not (hi0 > lo) then invalid_arg "Roots.bracket_upward: requires hi0 > lo";
  let f_lo = f lo in
  let rec grow hi steps =
    if steps > max_steps then None
    else
      let f_hi = f hi in
      if opposite_signs f_lo f_hi then Some (lo, hi)
      else grow (hi *. factor) (steps + 1)
  in
  grow hi0 0
