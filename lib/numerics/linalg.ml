type matrix = float array array

let make ~rows ~cols x =
  if rows < 0 || cols < 0 then invalid_arg "Linalg.make: negative dimension";
  Array.init rows (fun _ -> Array.make cols x)

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.))

let copy m = Array.map Array.copy m

let dims m =
  let rows = Array.length m in
  if rows = 0 then (0, 0)
  else begin
    let cols = Array.length m.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> cols then invalid_arg "Linalg.dims: ragged matrix")
      m;
    (rows, cols)
  end

let transpose m =
  let rows, cols = dims m in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let mat_vec m v =
  let rows, cols = dims m in
  if Array.length v <> cols then invalid_arg "Linalg.mat_vec: dimension mismatch";
  Array.init rows (fun i ->
      let acc = ref 0. in
      for j = 0 to cols - 1 do
        acc := !acc +. (m.(i).(j) *. v.(j))
      done;
      !acc)

let vec_mat v m =
  let rows, cols = dims m in
  if Array.length v <> rows then invalid_arg "Linalg.vec_mat: dimension mismatch";
  let out = Array.make cols 0. in
  for i = 0 to rows - 1 do
    let vi = v.(i) in
    if vi <> 0. then
      for j = 0 to cols - 1 do
        out.(j) <- out.(j) +. (vi *. m.(i).(j))
      done
  done;
  out

let mat_mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Linalg.mat_mul: dimension mismatch";
  let out = make ~rows:ra ~cols:cb 0. in
  for i = 0 to ra - 1 do
    for k = 0 to ca - 1 do
      let aik = a.(i).(k) in
      if aik <> 0. then
        for j = 0 to cb - 1 do
          out.(i).(j) <- out.(i).(j) +. (aik *. b.(k).(j))
        done
    done
  done;
  out

let solve a b =
  let n, cols = dims a in
  if n <> cols then invalid_arg "Linalg.solve: matrix must be square";
  if Array.length b <> n then invalid_arg "Linalg.solve: dimension mismatch";
  let m = copy a in
  let x = Array.copy b in
  (* Forward elimination with partial pivoting. *)
  for col = 0 to n - 1 do
    let pivot_row = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot_row).(col) then
        pivot_row := row
    done;
    if Float.abs m.(!pivot_row).(col) < 1e-300 then
      failwith "Linalg.solve: singular matrix";
    if !pivot_row <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot_row);
      m.(!pivot_row) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!pivot_row);
      x.(!pivot_row) <- tb
    end;
    let pivot = m.(col).(col) in
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. pivot in
      if factor <> 0. then begin
        m.(row).(col) <- 0.;
        for j = col + 1 to n - 1 do
          m.(row).(j) <- m.(row).(j) -. (factor *. m.(col).(j))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  (* Back substitution. *)
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for j = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(j) *. x.(j))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v
let norm_l1 v = Array.fold_left (fun acc x -> acc +. Float.abs x) 0. v

let vec_sub a b =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg.vec_sub: length mismatch";
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let vec_scale k v = Array.map (fun x -> k *. x) v

let l1_diff a b =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg.l1_diff: length mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (a.(i) -. b.(i))
  done;
  !acc

let max_abs_diff a b =
  if Array.length a <> Array.length b then
    invalid_arg "Linalg.max_abs_diff: length mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := Float.max !acc (Float.abs (a.(i) -. b.(i)))
  done;
  !acc

let normalize_l1 v =
  let total = Array.fold_left ( +. ) 0. v in
  if not (Float.is_finite total) || total = 0. then
    invalid_arg "Linalg.normalize_l1: entries must sum to a finite nonzero value";
  Array.map (fun x -> x /. total) v
