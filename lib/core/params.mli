(** Protocol parameters (Table I) and the derived per-round probabilities.

    The analysis treats [n] and [Delta] as real-valued (exponents like
    [(1-p)^(mu*n)] are evaluated for fractional [mu*n]), so this module
    stores floats; the simulator's integer configuration converts via
    {!of_sim_config}.  All derived quantities are exposed in both the
    linear and the log domain — at the paper's own operating point
    ([Delta = 1e13]) the linear domain [abar ** (2 delta)] is fine (it is
    [exp(-2 mu / c)]), but intermediate quantities in the lemma chain are
    not, so the log forms are primary. *)

type t = private {
  n : float;  (** number of miners, [>= 4] *)
  delta : float;  (** maximum message delay, [>= 1] *)
  p : float;  (** proof-of-work hardness, in (0, 1) *)
  nu : float;  (** adversarial fraction, in [0, 1/2) *)
}

val create : n:float -> delta:float -> p:float -> nu:float -> t
(** @raise Invalid_argument when any constraint of Eqs. (1)–(3) fails
    ([nu = 0.] is tolerated for baselines; theorem-level functions that
    require [nu > 0] check separately). *)

val of_c : n:float -> delta:float -> nu:float -> c:float -> t
(** [of_c ~n ~delta ~nu ~c] sets [p = 1 / (c n delta)].
    @raise Invalid_argument if the implied [p] leaves (0, 1). *)

val of_sim_config : Nakamoto_sim.Config.t -> t
(** Analysis-side view of a simulator configuration (uses the realized
    integer miner split, so [mu t] matches the simulation exactly). *)

val mu : t -> float
(** [mu t = 1. -. nu t] (Eq. 1). *)

val c : t -> float
(** [c t = 1. /. (p *. n *. delta)]. *)

val log_ratio : t -> float
(** [log_ratio t = log (mu /. nu)] — the ubiquitous [L] of the lemma
    chain.  @raise Invalid_argument when [nu = 0.]. *)

val alpha : t -> float
(** Probability some honest miner mines in a round (Eq. 7). *)

val abar : t -> float
(** Probability no honest miner mines in a round (Eq. 8). *)

val log_abar : t -> float
(** [log (abar t)], computed as [mu * n * log1p (-p)]. *)

val alpha1 : t -> float
(** Probability exactly one honest miner mines in a round (Eq. 9). *)

val log_alpha1 : t -> float
(** [log (alpha1 t)] = [log (p mu n) + (mu n - 1) log1p (-p)]. *)

val adversary_rate : t -> float
(** Expected adversarial blocks per round, [p *. nu *. n] (Eq. 27). *)

val log_adversary_rate : t -> float
(** [log (adversary_rate t)]; [neg_infinity] when [nu = 0.]. *)

val honest_rate : t -> float
(** Expected honest blocks per round, [p *. mu *. n]. *)

val pp : Format.formatter -> t -> unit

val bitcoin_like : t
(** A parameter point shaped like Bitcoin's (block every ~600 s, ~10 s
    propagation: [c = 60]), with [n = 1e5] miners and [nu = 0.25]. *)

val figure1_point : nu:float -> c:float -> t
(** The paper's Figure 1 operating point: [n = 1e5], [delta = 1e13].
    @raise Invalid_argument per {!of_c}. *)
