module Table = Nakamoto_numerics.Table
module Special = Nakamoto_numerics.Special

let for_params (p : Params.t) =
  let t =
    Table.create ~title:"Table I: notation and values at the given parameters"
      ~columns:[ "symbol"; "meaning"; "value"; "log-domain" ]
  in
  let row symbol meaning value log_value =
    Table.add_row t
      [ Table.Text symbol; Table.Text meaning; value; log_value ]
  in
  row "p" "hardness of the proof of work" (Table.Sci p.p) (Table.Text "-");
  row "n" "number of miners" (Table.Float p.n) (Table.Text "-");
  row "Delta" "maximum adversarial message delay" (Table.Float p.delta)
    (Table.Text "-");
  row "c" "1/(p n Delta): delays per block" (Table.Float (Params.c p))
    (Table.Text "-");
  row "mu" "honest fraction" (Table.Float (Params.mu p)) (Table.Text "-");
  row "nu" "adversarial fraction" (Table.Float p.nu) (Table.Text "-");
  row "alpha" "P(some honest block in a round), Eq. 7"
    (Table.Sci (Params.alpha p))
    (Table.Text "-");
  row "abar" "P(no honest block in a round), Eq. 8" (Table.Sci (Params.abar p))
    (Table.Float (Params.log_abar p));
  row "alpha1" "P(exactly one honest block), Eq. 9"
    (Table.Sci (Params.alpha1 p))
    (Table.Float (Params.log_alpha1 p));
  row "abar^2D*a1" "convergence-opportunity rate, Eq. 44"
    (Table.Log10 (Conv_chain.log_convergence_rate p))
    (Table.Float (Conv_chain.log_convergence_rate p));
  row "p nu n" "adversary block rate, Eq. 27"
    (Table.Sci (Params.adversary_rate p))
    (Table.Float (Params.log_adversary_rate p));
  t

let identities_hold (p : Params.t) =
  let alpha = Params.alpha p and abar = Params.abar p in
  let close = Special.approx_equal ~rtol:1e-9 ~atol:1e-15 in
  close (alpha +. abar) 1.
  && close (Params.c p) (1. /. (p.p *. p.n *. p.delta))
  && close (Params.mu p +. p.nu) 1.
  && Params.alpha1 p <= alpha +. 1e-15
  && close (Params.alpha1 p) (p.p *. Params.mu p *. p.n *. abar /. (1. -. p.p))
