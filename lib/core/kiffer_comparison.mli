(** A quantitative reconstruction of the paper's critique of Kiffer,
    Rajaraman et al. (CCS 2018) — reference [6].

    The paper (Section IV, "Novelty of our Theorem 1") makes two specific
    objections to [6]:

    + their Markov chain "has only two states and cannot cover all
      possible states" — unlike the 2Δ+1-state suffix chain [C_F];
    + their waiting-time computations [l11]/[l10] use [1/(mu p)] where
      the correct quantity is [1/alpha = 1/(1 - (1-p)^(mu n))].

    We do not have [6]'s exact formulas, so this module is an explicit
    {e reconstruction} that isolates each error in a checkable form:

    - {!lumped_chain} is the best two-state (Quiet/Active) collapse of
      the suffix chain, with the "Δ consecutive silent rounds" event
      approximated geometrically — the structural information a two-state
      chain must discard.  {!lumping_error} is the resulting error in the
      stationary probability of the Quiet class against the exact
      Eq. 37c value.
    - {!ell_correct} vs {!ell_flawed} are the two waiting times the paper
      contrasts (expected rounds to the next H-{e round} vs to the next
      honest {e block}); {!correct_rate}/{!flawed_rate} propagate them
      through a renewal-style estimate of the convergence-opportunity
      rate, quantifying the overstatement the paper attributes to [6]. *)

type lumped = {
  chain : Nakamoto_markov.Chain.t;
  quiet : int;  (** state index: >= Δ silent rounds since the last H *)
  active : int;
}

val lumped_chain : alpha:float -> delta:int -> lumped
(** The two-state collapse.  @raise Invalid_argument on out-of-range
    [alpha] or [delta < 1]. *)

val lumped_quiet_probability : alpha:float -> delta:int -> float
(** Stationary mass of [quiet] in the lumped chain. *)

val exact_quiet_probability : alpha:float -> delta:int -> float
(** The exact suffix-chain value [pi(HN^{>=Δ}) = abar^Δ] (Eq. 37c). *)

val lumping_error : alpha:float -> delta:int -> float
(** Absolute gap between the two — the price of two states. *)

val ell_correct : Params.t -> float
(** [1 / alpha]: expected rounds until some honest miner succeeds. *)

val ell_flawed : Params.t -> float
(** [1 / (p mu n)]: expected rounds per honest block — the quantity the
    paper says [6] used in its place. *)

val waiting_time_ratio : Params.t -> float
(** [ell_correct /. ell_flawed <= 1]; equality only as [p mu n -> 0]. *)

val correct_rate : Params.t -> float
(** Renewal estimate of the convergence-opportunity rate using
    {!ell_correct}. *)

val flawed_rate : Params.t -> float
(** Same estimate with {!ell_flawed}; always >= {!correct_rate}. *)

val to_table : Params.t list -> Nakamoto_numerics.Table.t
(** Comparison table across parameter points (ablation #3's companion). *)
