(** Reproduction of the paper's Table I: notation with computed values.

    Table I is the notation glossary; its faithful executable form is the
    table of every symbol's *value* at a concrete parameter point, which
    is also the quickest smoke test that the derived quantities satisfy
    their defining identities. *)

val for_params : Params.t -> Nakamoto_numerics.Table.t
(** One row per symbol of Table I ([p, n, Delta, c, mu, nu, alpha, abar,
    alpha1]) with value, log-domain value where relevant, and the paper's
    defining expression. *)

val identities_hold : Params.t -> bool
(** The internal consistency of the derived values:
    [alpha + abar = 1], [c = 1/(p n Delta)], [mu + nu = 1],
    [alpha1 <= alpha], and [alpha1 = p mu n abar / (1 - p)]. *)
