module Table = Nakamoto_numerics.Table
module Chain = Nakamoto_markov.Chain
module Linalg = Nakamoto_numerics.Linalg

type zone = Safe | Gap | Broken

type suffix_diagnostics = {
  suffix_states : int;
  suffix_sparse : bool;
  suffix_deep_mass : float;
  suffix_max_abs_error : float;
}

type t = {
  params : Params.t;
  zone : zone;
  neat_threshold : float;
  neat_margin : float;
  theorem1_log_margin : float;
  theorem2_exact_threshold : float;
  pss_threshold : float;
  attack_threshold : float;
  confirmations : Confirmation.assessment option;
  confirmation_failure : Confirmation.unavailable option;
  growth_bounds : float * float;
  quality_bound : float;
  suffix_diagnostics : suffix_diagnostics option;
}

let zone_to_string = function
  | Safe -> "SAFE"
  | Gap -> "GAP"
  | Broken -> "BROKEN"

let assess (params : Params.t) =
  let c = Params.c params in
  let nu = params.nu in
  let neat_threshold =
    if nu = 0. then 0. else Bounds.neat_c_min ~nu
  in
  let attack_threshold =
    (* The attack needs nu > pss_attack_nu c, i.e. c < 1/(1/nu - 1/mu). *)
    if nu = 0. then 0. else 1. /. ((1. /. nu) -. (1. /. Params.mu params))
  in
  let zone =
    if nu = 0. || c > neat_threshold then Safe
    else if c < attack_threshold then Broken
    else Gap
  in
  let confirmations, confirmation_failure =
    (* Degrades to None outside the consistency region, and when the
       ratio is so close to 1 that no depth within the search limit
       suffices — the typed reason is kept alongside so batch callers
       can report why. *)
    match Confirmation.assess_checked params with
    | Ok a -> (Some a, None)
    | Error reason -> (None, Some reason)
  in
  let suffix_diagnostics =
    (* Only for enumerable integer Δ: solves C_F through the dense/sparse
       auto route and cross-checks Eq. 37 — a per-point solver health
       probe that Internet-scale Δ (e.g. Bitcoin's 10^13) skips. *)
    let delta = params.delta in
    if Float.is_integer delta && delta >= 1. && delta <= 4096. then begin
      let d = int_of_float delta in
      let alpha = Params.alpha params in
      if alpha > 0. && alpha < 1. then
        match
          let chain = Suffix_chain.build ~delta:d ~alpha in
          let pi = Chain.stationary_auto chain in
          let closed = Suffix_chain.stationary_closed_form ~delta:d ~alpha in
          let states = Chain.size chain in
          {
            suffix_states = states;
            suffix_sparse = states > Chain.sparse_crossover;
            suffix_deep_mass =
              pi.(Suffix_chain.index_of_state ~delta:d Suffix_chain.Deep);
            suffix_max_abs_error = Linalg.max_abs_diff pi closed;
          }
        with
        | diag -> Some diag
        | exception Invalid_argument _ -> None
        | exception Failure _ -> None
      else None
    end
    else None
  in
  {
    params;
    zone;
    neat_threshold;
    neat_margin = c -. neat_threshold;
    theorem1_log_margin = Bounds.theorem1_margin params;
    theorem2_exact_threshold =
      (if nu = 0. then 0.
       else Bounds.theorem2_c_min_optimal ~nu ~delta:params.delta ~eps2:1e-9);
    pss_threshold =
      (if nu = 0. then 0.
       else if nu >= 0.5 then infinity
       else 2. *. Params.mu params *. Params.mu params /. (1. -. (2. *. nu)));
    attack_threshold;
    confirmations;
    confirmation_failure;
    growth_bounds =
      ( Growth_quality.growth_rate_lower_bound params,
        Growth_quality.growth_rate_upper_bound params );
    quality_bound = Growth_quality.quality_delta_adjusted params;
    suffix_diagnostics;
  }

let pp fmt t =
  let c = Params.c t.params in
  Format.fprintf fmt "@[<v>assessment of %a@," Params.pp t.params;
  Format.fprintf fmt "  zone                   %s@," (zone_to_string t.zone);
  Format.fprintf fmt "  c                      %.4f@," c;
  Format.fprintf fmt "  our bound (Thm 2)      c > %.4f  (margin %+.4f)@,"
    t.neat_threshold t.neat_margin;
  Format.fprintf fmt "  Thm 2 exact threshold  c >= %.4f@," t.theorem2_exact_threshold;
  Format.fprintf fmt "  Thm 1 log-margin       %+.4f@," t.theorem1_log_margin;
  Format.fprintf fmt "  PSS consistency needs  c > %.4f@," t.pss_threshold;
  Format.fprintf fmt "  PSS attack wins for    c < %.4f@," t.attack_threshold;
  (match t.confirmations with
  | Some a ->
    Format.fprintf fmt "  confirmations (1e-3)   %d (residual %.2e)@,"
      a.Confirmation.confirmations a.Confirmation.residual_risk
  | None ->
    let reason =
      match t.confirmation_failure with
      | Some r -> Printf.sprintf " (%s)" (Confirmation.unavailable_label r)
      | None -> ""
    in
    Format.fprintf fmt "  confirmations          n/a%s@," reason);
  (match t.suffix_diagnostics with
  | Some d ->
    Format.fprintf fmt
      "  suffix chain C_F       %d states via %s, |Eq.37 - solve| <= %.2e@,"
      d.suffix_states
      (if d.suffix_sparse then "sparse" else "dense")
      d.suffix_max_abs_error
  | None -> Format.fprintf fmt "  suffix chain C_F       n/a (Delta not enumerable)@,");
  let lo, hi = t.growth_bounds in
  Format.fprintf fmt "  growth per round       [%.4g, %.4g]@," lo hi;
  Format.fprintf fmt "  quality floor          %.4f@]" t.quality_bound

type verdict = {
  v_params : Params.t;
  v_zone : zone;
  v_margin : float;
  v_margin_lo : float;
  v_margin_hi : float;
  v_confirmations : int option;
  v_conf_reason : string option;
  v_cached : bool;
  v_fallback : string option;
}

let verdict_of (t : t) =
  {
    v_params = t.params;
    v_zone = t.zone;
    v_margin = t.neat_margin;
    v_margin_lo = t.neat_margin;
    v_margin_hi = t.neat_margin;
    v_confirmations =
      Option.map (fun a -> a.Confirmation.confirmations) t.confirmations;
    v_conf_reason =
      Option.map Confirmation.unavailable_label t.confirmation_failure;
    v_cached = false;
    v_fallback = None;
  }

let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>verdict for %a@," Params.pp v.v_params;
  Format.fprintf fmt "  zone                   %s%s@,"
    (zone_to_string v.v_zone)
    (if v.v_cached then "  (cached)"
     else
       match v.v_fallback with
       | Some reason -> Printf.sprintf "  (exact fallback: %s)" reason
       | None -> "");
  if v.v_margin_lo = v.v_margin_hi then
    Format.fprintf fmt "  neat margin            %+.4f@," v.v_margin
  else
    Format.fprintf fmt
      "  neat margin            %+.4f  certified in [%+.6f, %+.6f]@,"
      v.v_margin v.v_margin_lo v.v_margin_hi;
  match (v.v_confirmations, v.v_conf_reason) with
  | Some z, _ -> Format.fprintf fmt "  confirmations (1e-3)   %d@]" z
  | None, Some reason ->
    Format.fprintf fmt "  confirmations          n/a (%s)@]" reason
  | None, None -> Format.fprintf fmt "  confirmations          n/a@]"

let to_table assessments =
  let t =
    Table.create ~title:"Security assessments"
      ~columns:
        [ "nu"; "c"; "zone"; "our bound"; "Thm1 margin"; "PSS bound";
          "attack below"; "confirmations"; "quality floor" ]
  in
  List.iter
    (fun a ->
      Table.add_row t
        [
          Table.Float a.params.Params.nu;
          Table.Float (Params.c a.params);
          Table.Text (zone_to_string a.zone);
          Table.Float a.neat_threshold;
          Table.Float a.theorem1_log_margin;
          Table.Float a.pss_threshold;
          Table.Float a.attack_threshold;
          (match a.confirmations with
          | Some c -> Table.Int c.Confirmation.confirmations
          | None -> Table.Text "-");
          Table.Float a.quality_bound;
        ])
    assessments;
  t
