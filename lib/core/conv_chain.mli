(** The concatenated chain [C_{F||P}] and the convergence-opportunity rate
    (Section V-A, Eqs. 39–46).

    A state is the pair of (i) the suffix class [F_{t-Δ-1}] and (ii) the
    window of the Δ+1 most recent detailed states [S_{t-Δ} .. S_t].  For
    the convergence-opportunity computation the detailed alphabet can be
    collapsed to three symbols — [N], [H1] (exactly one honest block) and
    [Hm] (two or more) — because the target state only distinguishes
    those.  The closed-form stationary probability of the target state
    [HN^{>=Δ} || H1 N^Δ] is [abar^(2Δ) alpha1] (Eq. 44); the explicit
    chain (tiny Δ) and the product formula (Eq. 40) cross-check it. *)

type detailed = N | H1 | Hm

val detailed_probability : Params.t -> detailed -> float
(** [abar], [alpha1], and [alpha - alpha1] respectively (Eq. 41). *)

val log_convergence_rate : Params.t -> float
(** Eq. (44) in the log domain:
    [2 delta * log abar + log alpha1]. *)

val convergence_rate : Params.t -> float
(** [exp (log_convergence_rate p)] — the stationary probability that a
    round completes a convergence opportunity. *)

val expected_convergence_count : Params.t -> horizon:int -> float
(** Eq. (26): [T * abar^(2 delta) * alpha1].
    @raise Invalid_argument on negative [horizon]. *)

val expected_adversary_blocks : Params.t -> horizon:int -> float
(** Eq. (27): [T * p * nu * n]. *)

type explicit = {
  chain : Nakamoto_markov.Chain.t;
  delta : int;
  convergence_state : int;  (** index of [HN^{>=Δ} || H1 N^Δ] *)
}

val build_explicit : delta:int -> Params.t -> explicit
(** [build_explicit ~delta p] enumerates the full
    [(2Δ+1) * 3^(Δ+1)]-state chain.  Exponential in [delta]; guarded to
    [delta <= 6].
    @raise Invalid_argument if [delta] outside [1, 6] or any detailed
    probability vanishes. *)

val product_stationary : delta:int -> Params.t -> index:int -> float
(** Eq. (40): [pi_{F||P}(f s1 .. s_{Δ+1}) = pi_F(f) * prod_i P(s_i)],
    evaluated for the state numbered [index] in {!build_explicit}'s
    encoding. *)

type cross_check = {
  closed_form : float;  (** Eq. (44): [abar^(2 delta) * alpha1] *)
  product_form : float;  (** Eq. (40) evaluated at the target state *)
  linear_solve : float;  (** explicit chain, direct solve of [pi P = pi] *)
  power_iteration : float;  (** explicit chain, iterated pushforward *)
}

val stationary_cross_check : delta:int -> Params.t -> cross_check
(** [stationary_cross_check ~delta p] computes the stationary probability
    of the convergence-opportunity state [HN^{>=Δ} || H1 N^Δ] four
    independent ways — the differential oracle's construction-vs-theory
    agreement check.  All four must coincide up to solver tolerance.
    @raise Invalid_argument as in {!build_explicit}. *)

val build_sparse : delta:int -> Params.t -> Nakamoto_markov.Sparse.t
(** [build_sparse ~delta p] is {!build_explicit}'s transition matrix
    emitted row by row into CSR form.  Never materializes a dense or
    row-array representation, so the cap rises to [delta <= 8]
    ([(2*8+1) * 3^9 = 334_611] states at 3 entries each).
    @raise Invalid_argument if [delta] outside [1, 8] or any detailed
    probability vanishes. *)

type sparse_cross_check = {
  eq44 : float;  (** Eq. (44): [abar^(2 delta) * alpha1] *)
  eq40 : float;  (** Eq. (40) evaluated at the target state *)
  sparse_stationary : float;
      (** GTH censoring on the CSR chain, power fallback past the fill
          budget *)
  sparse_power : float;
      (** sparse power iteration, on a domain pool when [jobs > 1] *)
}

val stationary_cross_check_sparse :
  ?jobs:int -> delta:int -> Params.t -> sparse_cross_check
(** {!stationary_cross_check} with the two solver legs routed through the
    sparse substrate — Eqs. 44 and 40 against {!Nakamoto_markov.Sparse}'s
    censoring and power solvers on the {!build_sparse} matrix.
    @raise Invalid_argument as in {!build_sparse}. *)

val index_of : delta:int -> Suffix_chain.state -> detailed list -> int
(** State encoding: suffix class and window (oldest first; must have
    length [delta + 1]).
    @raise Invalid_argument on length or range errors. *)

val state_of : delta:int -> int -> Suffix_chain.state * detailed list
(** Inverse of {!index_of}. *)
