module Special = Nakamoto_numerics.Special

let condition_holds ~eps1 ~eps2 (p : Params.t) =
  if p.nu = 0. then invalid_arg "Theorem2.condition_holds: requires nu > 0";
  Params.c p >= Bounds.theorem2_c_min ~nu:p.nu ~delta:p.delta ~eps1 ~eps2

type regime = {
  delta1 : float;
  delta2 : float;
  nu_lo : float;
  log_nu_lo : float;
  nu_hi : float;
  half_minus_nu_hi : float;
  inflation : float;
}

let regime ~delta ~delta1 ~delta2 =
  if delta < 2. then invalid_arg "Theorem2.regime: delta must be >= 2";
  if not (delta1 > 0. && delta2 > 0.) then
    invalid_arg "Theorem2.regime: delta1, delta2 must be positive";
  if delta1 +. delta2 >= 1. then
    invalid_arg "Theorem2.regime: requires delta1 + delta2 < 1";
  let d_d1 = delta ** delta1 in
  let d_d2 = delta ** delta2 in
  let nu_lo = Special.sigmoid (-.d_d1) in
  (* log (1/(1+e^x)) = -log1p (e^x); for large x this is just -x. *)
  let log_nu_lo =
    if d_d1 > 700. then -.d_d1 else -.Special.log1p (exp d_d1)
  in
  let x_hi = 1. /. (d_d2 -. 1.) in
  let nu_hi = Special.sigmoid (-.x_hi) in
  (* 1/2 - sigmoid(-x) = x/4 + O(x^3) for small x; tanh form is exact. *)
  let half_minus_nu_hi = 0.5 *. Float.tanh (x_hi /. 2.) in
  let inflation =
    (1. +. (delta ** (delta1 -. 1.)))
    /. (1. -. (delta ** (delta1 +. delta2 -. 1.)))
  in
  { delta1; delta2; nu_lo; log_nu_lo; nu_hi; half_minus_nu_hi; inflation }

let remark1_rows () =
  let delta = 1e13 in
  [
    regime ~delta ~delta1:(1. /. 6.) ~delta2:(1. /. 2.);
    regime ~delta ~delta1:(1. /. 8.) ~delta2:(2. /. 3.);
  ]

let neat_bound_with_inflation ~nu ~eps2 r =
  if eps2 <= 0. then
    invalid_arg "Theorem2.neat_bound_with_inflation: eps2 must be positive";
  Bounds.neat_c_min ~nu *. (1. +. eps2) *. r.inflation

let consistency_c_threshold ~nu = Bounds.neat_c_min ~nu
