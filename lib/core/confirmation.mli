(** Settlement analysis: how many confirmations until a payment is safe?

    A practitioner-facing extension of the paper's machinery.  The race
    between the public chain and a private attacker is a biased random
    walk on the attacker's deficit; with per-round effective rates
    [honest_rate] (chain-extending honest progress) and [adversary_rate]
    (Eq. 27's [p nu n]), the classic gambler's-ruin analysis gives the
    overtake probability, and Nakamoto's Poisson-mixture formula gives
    the double-spend probability after [z] confirmations.

    For the [Delta]-delay model we use the paper's own conservative
    accounting: only convergence opportunities ([abar^(2Delta) alpha1]
    per round, Eq. 44) are counted as guaranteed honest progress, so the
    resulting confirmation counts are safe even against the strongest
    delay adversary.  All three computations (closed form, absorbing
    Markov chain, simulation) are cross-checked in the test suite. *)

val overtake_probability : honest_rate:float -> adversary_rate:float ->
  deficit:int -> float
(** [overtake_probability ~honest_rate ~adversary_rate ~deficit] is the
    probability that a walk gaining +1 with intensity [adversary_rate]
    and -1 with intensity [honest_rate] ever reaches +1 from [-deficit]:
    [min 1 ((adversary_rate / honest_rate) ^ (deficit + 1))].
    A [deficit] of 0 means the attacker is even and needs one net block.
    @raise Invalid_argument unless both rates are positive and
    [deficit >= 0]. *)

val overtake_probability_bounded :
  honest_rate:float -> adversary_rate:float -> deficit:int ->
  give_up_behind:int -> float
(** Same race, but the attacker abandons once it falls [give_up_behind]
    blocks behind — the finite version, computed exactly with
    {!Nakamoto_markov.Absorbing} on the lead walk.  Converges to
    {!overtake_probability} as [give_up_behind] grows.
    @raise Invalid_argument if [give_up_behind <= deficit]. *)

val nakamoto_double_spend : ratio:float -> confirmations:int -> float
(** [nakamoto_double_spend ~ratio ~confirmations] is the attack-success
    probability of Nakamoto's whitepaper (section 11) for an attacker
    with rate ratio [ratio = q/p < 1] once the merchant has seen
    [confirmations] blocks: the Poisson mixture
    [1 - sum_{k=0}^{z} e^(-lambda) lambda^k / k! (1 - ratio^(z-k))]
    with [lambda = z * ratio].
    @raise Invalid_argument unless [0 < ratio] and [confirmations >= 1];
    returns [1.] for [ratio >= 1]. *)

val confirmations_for :
  ?limit:int -> ratio:float -> epsilon:float -> unit -> int option
(** [confirmations_for ~ratio ~epsilon ()] is [Some z] for the smallest
    [z >= 1] with [nakamoto_double_spend ~ratio ~confirmations:z <=
    epsilon], or [None] when no [z <= limit] (default [10_000])
    suffices — a well-typed "the ratio is too close to 1 to settle"
    answer, not an exception, so sweeps over a parameter grid can
    report the unsettleable cells instead of dying on the first one.
    @raise Invalid_argument unless [0 < ratio < 1], [0 < epsilon < 1]
    and [limit >= 1]. *)

type assessment = {
  params : Params.t;
  honest_rate : float;  (** convergence opportunities per round (Eq. 44) *)
  adversary_rate : float;  (** [p nu n] (Eq. 27) *)
  rate_ratio : float;
  confirmations : int;
  residual_risk : float;  (** double-spend probability at that depth *)
}

type unavailable =
  | No_adversary  (** [nu = 0.]: nothing to defend against *)
  | Outside_consistency of { rate_ratio : float }
      (** the rate ratio is not < 1: no finite depth is safe *)
  | Depth_limited of { rate_ratio : float; limit : int }
      (** no depth within {!confirmations_for}'s search limit reaches
          [epsilon] — settlement impractical this close to the
          consistency boundary *)
(** Why a confirmation depth could not be produced — the typed version
    of the three [Invalid_argument] cases {!assess} raises, so batch
    consumers (e.g. [assess --stdin-jsonl]) can report the reason per
    line instead of aborting. *)

val unavailable_label : unavailable -> string
(** Stable snake_case tag ("no_adversary" | "outside_consistency" |
    "depth_limited") for structured output and telemetry labels. *)

val assess_checked :
  ?epsilon:float -> Params.t -> (assessment, unavailable) result
(** Like {!assess} but total over valid {!Params.t}: the three failure
    modes come back as [Error] instead of [Invalid_argument]. *)

val assess : ?epsilon:float -> Params.t -> assessment
(** [assess params] computes the conservative confirmation depth in the
    Delta-delay model ([epsilon] defaults to [1e-3]).  Requires the
    parameters to sit strictly inside the consistency region
    ([rate_ratio < 1], i.e. Theorem 1's condition with slack).
    @raise Invalid_argument when [nu = 0.] (nothing to defend against),
    the rate ratio is not < 1 (no finite depth is safe), or no depth
    within {!confirmations_for}'s search limit reaches [epsilon] —
    the same cases {!assess_checked} returns as typed [Error]s. *)

val to_table : assessment list -> Nakamoto_numerics.Table.t
(** Render a sweep of assessments. *)
