let growth_rate_lower_bound (p : Params.t) =
  let alpha = Params.alpha p in
  alpha /. (1. +. (p.delta *. alpha))

let growth_rate_upper_bound p = Params.alpha p

let growth_in_window p ~rounds =
  if rounds < 0 then invalid_arg "Growth_quality.growth_in_window: negative window";
  let t = float_of_int rounds in
  (t *. growth_rate_lower_bound p, t *. growth_rate_upper_bound p)

let quality_lower_bound (p : Params.t) =
  Float.max 0. (1. -. (p.nu /. Params.mu p))

let quality_delta_adjusted (p : Params.t) =
  let effective = growth_rate_lower_bound p in
  Float.max 0. (1. -. (Params.adversary_rate p /. effective))

let consistent_with_simulation ~growth ~quality p =
  let tolerance = 0.03 in
  growth >= growth_rate_lower_bound p -. tolerance
  && growth <= growth_rate_upper_bound p +. tolerance
  && quality >= quality_delta_adjusted p -. tolerance
