module Roots = Nakamoto_numerics.Roots

let check_nu_open nu =
  if not (nu > 0. && nu < 0.5) then
    invalid_arg "Bounds: nu must lie in (0, 1/2)"

let neat_c_min ~nu =
  check_nu_open nu;
  let mu = 1. -. nu in
  2. *. mu /. log (mu /. nu)

(* All the numax inversions share the same shape: the criterion function is
   monotone in nu on (0, 1/2), positive for small nu (safe) and negative for
   large nu (unsafe); the root is the supremum of the safe region.  Clamped
   bisection endpoints keep the criterion functions inside their domain. *)
let invert_in_nu ~criterion =
  let lo = 1e-12 and hi = 0.5 -. 1e-12 in
  if criterion lo <= 0. then 0.
  else if criterion hi > 0. then hi
  else
    match Roots.bisect ~tol:1e-13 ~f:criterion ~lo ~hi () with
    | Roots.Converged { root; _ } -> root
    | Roots.Max_iterations { best; _ } -> best
    | Roots.No_sign_change _ ->
      (* Excluded by the endpoint checks above. *)
      assert false

let neat_numax ~c =
  if c <= 0. then invalid_arg "Bounds.neat_numax: c must be positive";
  invert_in_nu ~criterion:(fun nu -> c -. neat_c_min ~nu)

let pss_consistency_holds (p : Params.t) =
  let alpha = Params.alpha p in
  let beta = p.p *. p.nu *. p.n in
  alpha *. (1. -. (((2. *. p.delta) +. 2.) *. alpha)) > beta

let pss_numax_closed ~c =
  if c <= 0. then invalid_arg "Bounds.pss_numax_closed: c must be positive";
  if c <= 2. then 0. else (2. -. c +. sqrt ((c *. c) -. (2. *. c))) /. 2.

let pss_numax_exact ~n ~delta ~c =
  if n <= 0. || delta <= 0. || c <= 0. then
    invalid_arg "Bounds.pss_numax_exact: arguments must be positive";
  let criterion nu =
    let p = Params.of_c ~n ~delta ~nu ~c in
    let alpha = Params.alpha p in
    let beta = p.Params.p *. nu *. n in
    (alpha *. (1. -. (((2. *. delta) +. 2.) *. alpha))) -. beta
  in
  invert_in_nu ~criterion

let pss_attack_nu ~c =
  if c <= 0. then invalid_arg "Bounds.pss_attack_nu: c must be positive";
  ((2. *. c) +. 1. -. sqrt ((4. *. c *. c) +. 1.)) /. 2.

let theorem1_margin ?(delta1 = 0.) (p : Params.t) =
  if delta1 < 0. then invalid_arg "Bounds.theorem1_margin: delta1 < 0";
  if p.nu = 0. then infinity
  else
    (2. *. p.delta *. Params.log_abar p)
    +. Params.log_alpha1 p
    -. (log1p delta1 +. Params.log_adversary_rate p)

let theorem1_holds ?delta1 p = theorem1_margin ?delta1 p > 0.

let theorem1_numax ?delta1 ~n ~delta ~c () =
  if n <= 0. || delta <= 0. || c <= 0. then
    invalid_arg "Bounds.theorem1_numax: arguments must be positive";
  invert_in_nu ~criterion:(fun nu ->
      theorem1_margin ?delta1 (Params.of_c ~n ~delta ~nu ~c))

let check_theorem2_args ~nu ~delta ~eps2 =
  check_nu_open nu;
  if delta < 1. then invalid_arg "Bounds: delta must be >= 1";
  if eps2 <= 0. then invalid_arg "Bounds: eps2 must be positive"

let theorem2_c_min ~nu ~delta ~eps1 ~eps2 =
  check_theorem2_args ~nu ~delta ~eps2;
  if not (eps1 > 0. && eps1 < 1.) then
    invalid_arg "Bounds.theorem2_c_min: eps1 must lie in (0, 1)";
  let mu = 1. -. nu in
  let l = log (mu /. nu) in
  let first = ((2. *. mu /. l) +. (1. /. delta)) *. (1. +. eps2) /. (1. -. eps1) in
  let second = (l +. 1.) *. mu /. (eps1 *. delta *. l) in
  Float.max first second

(* With A = (2mu/L + 1/Delta)(1+eps2) and B = (L+1)mu/(Delta L), the first
   branch A/(1-eps1) increases and the second B/eps1 decreases in eps1, so
   the max is minimized where they meet: eps1* = B/(A+B), value A + B. *)
let theorem2_c_min_optimal ~nu ~delta ~eps2 =
  check_theorem2_args ~nu ~delta ~eps2;
  let mu = 1. -. nu in
  let l = log (mu /. nu) in
  let a = ((2. *. mu /. l) +. (1. /. delta)) *. (1. +. eps2) in
  let b = (l +. 1.) *. mu /. (delta *. l) in
  a +. b

let theorem2_numax ~delta ~eps2 ~c =
  if c <= 0. then invalid_arg "Bounds.theorem2_numax: c must be positive";
  if delta < 1. then invalid_arg "Bounds.theorem2_numax: delta must be >= 1";
  if eps2 <= 0. then invalid_arg "Bounds.theorem2_numax: eps2 must be positive";
  invert_in_nu ~criterion:(fun nu -> c -. theorem2_c_min_optimal ~nu ~delta ~eps2)

let flawed_alpha1 (p : Params.t) = Params.honest_rate p

let flawed_theorem1_margin (p : Params.t) =
  if p.nu = 0. then infinity
  else
    (2. *. p.delta *. Params.log_abar p)
    +. log (flawed_alpha1 p)
    -. Params.log_adversary_rate p
