(** Theorem 2 and Remark 1: the neat bound with its finite-Δ regimes.

    Theorem 2 (Ineq. 11) is the two-branch condition on [c]; under the
    [nu]-range condition Ineq. (12) (parameterized by [delta1, delta2]
    with [delta1 + delta2 < 1]) it collapses to Ineq. (13):
    [c >= 2mu/ln(mu/nu) * (1+eps2) * (1 + Δ^(delta1-1)) / (1 - Δ^(delta1+delta2-1))],
    i.e. "just slightly greater than [2mu/ln(mu/nu)]".  Remark 1
    instantiates two [(delta1, delta2)] pairs at [Δ = 1e13]. *)

val condition_holds : eps1:float -> eps2:float -> Params.t -> bool
(** Ineq. (11) at the given constants.
    @raise Invalid_argument unless [0 < eps1 < 1], [eps2 > 0], [nu > 0]. *)

type regime = {
  delta1 : float;
  delta2 : float;
  nu_lo : float;  (** [1 / (1 + exp (Delta^delta1))] (Ineq. 12, left) *)
  log_nu_lo : float;  (** natural log of [nu_lo] (it can underflow) *)
  nu_hi : float;  (** [1 / (1 + exp (1 / (Delta^delta2 - 1)))] *)
  half_minus_nu_hi : float;  (** distance of [nu_hi] below 1/2 *)
  inflation : float;
      (** the factor [(1 + Δ^(delta1-1)) / (1 - Δ^(delta1+delta2-1))]
          multiplying [2mu/ln(mu/nu) * (1+eps2)] in Ineq. (13) *)
}

val regime : delta:float -> delta1:float -> delta2:float -> regime
(** [regime ~delta ~delta1 ~delta2] computes the [nu] range and inflation
    factor of Ineqs. (12)–(13).
    @raise Invalid_argument unless [delta >= 2], [delta1, delta2 > 0], and
    [delta1 +. delta2 < 1.]. *)

val remark1_rows : unit -> regime list
(** The two regimes of Remark 1 at the paper's [Delta = 1e13]:
    [(1/6, 1/2)] and [(1/8, 2/3)].  Expected values (paper):
    [nu] ranges [~1e-63 .. 0.5 - 1e-7] and [~1e-18 .. 0.5 - 1e-9];
    inflations [~1 + 5e-5] and [~1 + 2e-3]. *)

val neat_bound_with_inflation : nu:float -> eps2:float -> regime -> float
(** RHS of Ineq. (13): [2mu/ln(mu/nu) * (1+eps2) * inflation].
    @raise Invalid_argument unless [0 < nu < 1/2] and [eps2 > 0]. *)

val consistency_c_threshold : nu:float -> float
(** The headline result: the asymptotic threshold [2mu/ln(mu/nu)]
    (equals {!Bounds.neat_c_min}). *)
