(** Reproduction of the paper's Figure 2 — the suffix chain's structure.

    Figure 2 is a diagram, so its reproduction is (a) a GraphViz/DOT
    rendering, (b) a structural census that checks the chain has exactly
    the advertised shape (2Δ+1 states, the four transition rules, the
    ergodicity properties claimed in the text), and (c) the stationary
    distribution both ways. *)

type census = {
  delta : int;
  states : int;  (** must be [2 delta + 1] *)
  recent_states : int;  (** [delta] *)
  deep_states : int;  (** [1] *)
  deep_recent_states : int;  (** [delta] *)
  edges : int;  (** 2 per state *)
  irreducible : bool;
  aperiodic : bool;
  stationary_max_abs_error : float;
      (** max |closed form (Eq. 37) - linear solve| over states *)
}

val census : delta:int -> alpha:float -> census
(** [census ~delta ~alpha] builds the chain and audits it.
    @raise Invalid_argument per {!Suffix_chain.build}. *)

val to_table : census list -> Nakamoto_numerics.Table.t
(** One row per (delta, alpha) audit. *)

val dot : delta:int -> alpha:float -> string
(** Alias of {!Suffix_chain.to_dot}. *)
