module Chain = Nakamoto_markov.Chain
module Absorbing = Nakamoto_markov.Absorbing
module Table = Nakamoto_numerics.Table

let check_rates ~honest_rate ~adversary_rate =
  if not (honest_rate > 0. && adversary_rate > 0.) then
    invalid_arg "Confirmation: rates must be positive"

let overtake_probability ~honest_rate ~adversary_rate ~deficit =
  check_rates ~honest_rate ~adversary_rate;
  if deficit < 0 then invalid_arg "Confirmation: deficit must be nonnegative";
  let ratio = adversary_rate /. honest_rate in
  if ratio >= 1. then 1.
  else ratio ** float_of_int (deficit + 1)

let overtake_probability_bounded ~honest_rate ~adversary_rate ~deficit
    ~give_up_behind =
  check_rates ~honest_rate ~adversary_rate;
  if deficit < 0 then invalid_arg "Confirmation: deficit must be nonnegative";
  if give_up_behind <= deficit then
    invalid_arg "Confirmation: give_up_behind must exceed deficit";
  (* Embedded jump chain of the race: ignore rounds where neither side
     produces (their probability mass only rescales time).  The lead walk
     moves +1 with probability q and -1 with probability 1-q where
     q = adversary_rate / (adversary_rate + honest_rate).  States encode
     lead = -give_up_behind .. +1; both ends absorb. *)
  let q = adversary_rate /. (adversary_rate +. honest_rate) in
  let lo = -give_up_behind and hi = 1 in
  let size = hi - lo + 1 in
  let index lead = lead - lo in
  let rows =
    Array.init size (fun i ->
        let lead = i + lo in
        if lead = lo || lead = hi then [ (i, 1.) ]
        else [ (index (lead + 1), q); (index (lead - 1), 1. -. q) ])
  in
  let chain = Chain.create ~size ~rows () in
  let absorbing = Absorbing.create ~chain ~absorbing:[ index lo; index hi ] in
  Absorbing.absorption_probability absorbing ~from:(index (-deficit))
    ~into:(index hi)

let nakamoto_double_spend ~ratio ~confirmations =
  if ratio <= 0. then invalid_arg "Confirmation: ratio must be positive";
  if confirmations < 1 then
    invalid_arg "Confirmation: confirmations must be >= 1";
  if ratio >= 1. then 1.
  else begin
    let z = confirmations in
    let lambda = float_of_int z *. ratio in
    (* sum_{k=0}^{z} poisson(k; lambda) * (1 - ratio^(z-k)), accumulated
       in linear domain (z is small; lambda <= z). *)
    let acc = ref 0. in
    let log_fact = ref 0. in
    for k = 0 to z do
      if k > 0 then log_fact := !log_fact +. log (float_of_int k);
      let log_pois =
        (float_of_int k *. log lambda) -. lambda -. !log_fact
      in
      let caught = ratio ** float_of_int (z - k) in
      acc := !acc +. (exp log_pois *. (1. -. caught))
    done;
    Nakamoto_numerics.Special.clamp ~lo:0. ~hi:1. (1. -. !acc)
  end

let confirmations_for ?(limit = 10_000) ~ratio ~epsilon () =
  if not (ratio > 0. && ratio < 1.) then
    invalid_arg "Confirmation.confirmations_for: ratio must lie in (0, 1)";
  if not (epsilon > 0. && epsilon < 1.) then
    invalid_arg "Confirmation.confirmations_for: epsilon must lie in (0, 1)";
  if limit < 1 then
    invalid_arg "Confirmation.confirmations_for: limit must be >= 1";
  let rec search z =
    if z > limit then None
    else if nakamoto_double_spend ~ratio ~confirmations:z <= epsilon then Some z
    else search (z + 1)
  in
  search 1

type assessment = {
  params : Params.t;
  honest_rate : float;
  adversary_rate : float;
  rate_ratio : float;
  confirmations : int;
  residual_risk : float;
}

type unavailable =
  | No_adversary
  | Outside_consistency of { rate_ratio : float }
  | Depth_limited of { rate_ratio : float; limit : int }

let unavailable_label = function
  | No_adversary -> "no_adversary"
  | Outside_consistency _ -> "outside_consistency"
  | Depth_limited _ -> "depth_limited"

let assess_checked ?(epsilon = 1e-3) (params : Params.t) =
  if params.nu = 0. then Error No_adversary
  else begin
    let honest_rate = Conv_chain.convergence_rate params in
    let adversary_rate = Params.adversary_rate params in
    let rate_ratio = adversary_rate /. honest_rate in
    if not (rate_ratio < 1.) then Error (Outside_consistency { rate_ratio })
    else
      match confirmations_for ~ratio:rate_ratio ~epsilon () with
      | None ->
        (* A ratio this close to 1 would want >10_000 confirmations: for
           any practical purpose the parameters are not settleable. *)
        Error (Depth_limited { rate_ratio; limit = 10_000 })
      | Some confirmations ->
        Ok
          {
            params;
            honest_rate;
            adversary_rate;
            rate_ratio;
            confirmations;
            residual_risk = nakamoto_double_spend ~ratio:rate_ratio ~confirmations;
          }
  end

let assess ?epsilon (params : Params.t) =
  match assess_checked ?epsilon params with
  | Ok a -> a
  | Error No_adversary ->
    invalid_arg "Confirmation.assess: nu = 0 has nothing to defend against"
  | Error (Outside_consistency _) ->
    invalid_arg
      "Confirmation.assess: parameters outside the consistency region (ratio >= 1)"
  | Error (Depth_limited { rate_ratio; _ }) ->
    invalid_arg
      (Printf.sprintf
         "Confirmation.assess: no depth within the search limit reaches \
          epsilon = %g at rate ratio %.6f (settlement impractical this \
          close to the consistency boundary)"
         (Option.value epsilon ~default:1e-3) rate_ratio)

let to_table assessments =
  let t =
    Table.create
      ~title:"Confirmation depths (conservative Delta-delay accounting)"
      ~columns:
        [ "nu"; "c"; "honest rate (Eq.44)"; "adv rate (Eq.27)"; "ratio";
          "confirmations"; "residual risk" ]
  in
  List.iter
    (fun a ->
      Table.add_row t
        [
          Table.Float a.params.Params.nu;
          Table.Float (Params.c a.params);
          Table.Sci a.honest_rate;
          Table.Sci a.adversary_rate;
          Table.Float a.rate_ratio;
          Table.Int a.confirmations;
          Table.Sci a.residual_risk;
        ])
    assessments;
  t
