(** Chain growth and chain quality — the paper's stated future work
    (Section II), implemented with the standard PSS-style bounds so the
    simulator's measurements have analytic counterparts.

    Chain growth: in any window, honest chains grow by at least one block
    per "effective" honest success — an honest block mined when the
    network has had [Delta] quiet rounds to synchronize — giving the
    pessimistic per-round rate [alpha / (1 + Delta * alpha)] (every
    success potentially followed by [Delta] wasted rounds), and the
    optimistic ceiling [alpha] (instant propagation).

    Chain quality: out of the blocks on any honest chain, the adversary
    can claim at most its production share against the honest effective
    production, giving the folklore lower bound
    [1 - (adversary_rate / effective_honest_rate)]. *)

val growth_rate_lower_bound : Params.t -> float
(** [alpha / (1 + Delta * alpha)]: blocks per round under worst-case
    delays. *)

val growth_rate_upper_bound : Params.t -> float
(** [alpha]: blocks per round with instant propagation (the chain cannot
    grow by more than one per H-round). *)

val growth_in_window : Params.t -> rounds:int -> float * float
(** [(lower, upper)] expected growth over a window. *)

val quality_lower_bound : Params.t -> float
(** [1 - nu/mu], the classic bound: the adversary contributes at most
    [nu/mu] of the blocks on a chain honest players keep extending
    (clamped at [0.]). *)

val quality_delta_adjusted : Params.t -> float
(** Quality with the [Delta]-delay haircut on honest effectiveness:
    [1 - adversary_rate / (alpha / (1 + Delta alpha))], clamped at [0.] —
    the pessimistic analogue of {!quality_lower_bound}. *)

val consistent_with_simulation :
  growth:float -> quality:float -> Params.t -> bool
(** [consistent_with_simulation ~growth ~quality p] checks a simulated
    (growth rate, chain quality) pair against the analytic envelope:
    growth within [lower - tolerance, upper + tolerance] (in blocks per
    round) and quality at least the delta-adjusted lower bound minus
    tolerance.  Tolerance is 3 percentage points. *)
