(** Theorem 1 packaged: condition, constants, and the concentration bound.

    Theorem 1 states that consistency holds when
    [abar^(2Δ) alpha1 >= (1+delta1) p nu n] (Ineq. 10).  Its proof needs
    (a) the expectation identities Eqs. (26)–(27), (b) the matched
    constants [delta2, delta3] of Eq. (23), and (c) the two tail bounds
    Ineqs. (19)–(20) whose union gives the
    [1 - O(1) exp(-Omega(T))] guarantee.  This module computes all the
    ingredients so they can be compared against simulation. *)

type constants = {
  delta1 : float;
  delta2 : float;  (** [1 - (1+delta1)^(-1/3)] (Eq. 23) *)
  delta3 : float;  (** [(1+delta1)^(1/3) - 1] (Eq. 23) *)
  gap_factor : float;
      (** [(1+delta1)^(2/3) - (1+delta1)^(1/3)] — the coefficient of
          [E A] in the surviving gap (Ineq. 24) *)
}

val constants : delta1:float -> constants
(** @raise Invalid_argument unless [delta1 > 0.]. *)

val holds : ?delta1:float -> Params.t -> bool
(** Ineq. (10) at the given slack ([delta1] defaults to [0.]). *)

val margin : ?delta1:float -> Params.t -> float
(** Log-domain slack of Ineq. (10) (see {!Bounds.theorem1_margin}). *)

type guarantee = {
  horizon : int;  (** the window length [T] *)
  expected_convergence : float;  (** Eq. (26) *)
  expected_adversary : float;  (** Eq. (27) *)
  convergence_shortfall_bound : float;
      (** Ineq. (47)'s bound on
          [P(C <= (1-delta2) E C)] given the mixing time *)
  adversary_overshoot_bound : float;
      (** Ineq. (49)'s bound on [P(A >= (1+delta3) E A)] *)
  failure_bound : float;  (** union bound: their sum, capped at 1 *)
  expected_gap : float;
      (** the guaranteed [C - A] surplus
          [gap_factor * E A] of Ineq. (24) when neither tail event
          happens *)
}

val guarantee :
  delta1:float -> horizon:int -> mixing_time:float -> Params.t -> guarantee
(** [guarantee ~delta1 ~horizon ~mixing_time p] instantiates the proof's
    quantitative content.  [mixing_time] is the 1/8-mixing time of
    [C_{F||P}] (measure it with {!Nakamoto_markov.Chain.mixing_time} on
    {!Conv_chain.build_explicit} for small [delta], or supply an upper
    estimate).  Uses Proposition 1's [||phi||_pi] bound.
    @raise Invalid_argument unless [delta1 > 0], [horizon > 0],
    [mixing_time > 0], and [nu > 0]. *)
