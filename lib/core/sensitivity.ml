module Table = Nakamoto_numerics.Table

let threshold_derivative ~nu =
  if not (nu > 0. && nu < 0.5) then
    invalid_arg "Sensitivity.threshold_derivative: nu outside (0, 1/2)";
  let l = log ((1. -. nu) /. nu) in
  2. /. (l *. l) *. ((1. /. nu) -. l)

let numax_slope ~c =
  if c <= 0. then invalid_arg "Sensitivity.numax_slope: c <= 0";
  let nu = Bounds.neat_numax ~c in
  1. /. threshold_derivative ~nu

let numax_elasticity ~c =
  let nu = Bounds.neat_numax ~c in
  c /. nu *. numax_slope ~c

let marginal_value_table ~c_grid =
  let t =
    Table.create
      ~title:"Marginal value of c: extra tolerable adversary per unit of c"
      ~columns:[ "c"; "nu_max"; "d nu_max / d c"; "elasticity" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          Table.Float c;
          Table.Float (Bounds.neat_numax ~c);
          Table.Float (numax_slope ~c);
          Table.Float (numax_elasticity ~c);
        ])
    c_grid;
  t
