type constants = {
  delta1 : float;
  delta2 : float;
  delta3 : float;
  gap_factor : float;
}

let constants ~delta1 =
  if not (delta1 > 0.) then
    invalid_arg "Theorem1.constants: delta1 must be positive";
  let third = (1. +. delta1) ** (1. /. 3.) in
  {
    delta1;
    delta2 = 1. -. (1. /. third);
    delta3 = third -. 1.;
    gap_factor = (third *. third) -. third;
  }

let holds = Bounds.theorem1_holds
let margin = Bounds.theorem1_margin

type guarantee = {
  horizon : int;
  expected_convergence : float;
  expected_adversary : float;
  convergence_shortfall_bound : float;
  adversary_overshoot_bound : float;
  failure_bound : float;
  expected_gap : float;
}

let guarantee ~delta1 ~horizon ~mixing_time (p : Params.t) =
  if horizon <= 0 then invalid_arg "Theorem1.guarantee: horizon must be positive";
  if mixing_time <= 0. then
    invalid_arg "Theorem1.guarantee: mixing_time must be positive";
  if p.nu = 0. then invalid_arg "Theorem1.guarantee: requires nu > 0";
  let k = constants ~delta1 in
  let rate = Conv_chain.convergence_rate p in
  let expected_convergence = float_of_int horizon *. rate in
  let expected_adversary = Conv_chain.expected_adversary_blocks p ~horizon in
  let norm_phi_pi = Lemmas.pi_norm_bound p in
  let convergence_shortfall_bound =
    (* Ineq. (47): a rate strictly between 0 and 1 is required by the
       bound's hypotheses; rate > 0 holds whenever p, mu > 0. *)
    Nakamoto_prob.Tail_bounds.markov_chain_lower_tail ~norm_phi_pi
      ~stationary_rate:rate ~horizon ~mixing_time ~delta:k.delta2
  in
  let adversary_overshoot_bound =
    let trials =
      Nakamoto_prob.Binomial.create
        ~trials:(horizon * int_of_float (Float.round (p.nu *. p.n)))
        ~p:p.p
    in
    Nakamoto_prob.Tail_bounds.binomial_upper_tail trials ~delta:k.delta3
  in
  {
    horizon;
    expected_convergence;
    expected_adversary;
    convergence_shortfall_bound;
    adversary_overshoot_bound;
    failure_bound =
      Float.min 1. (convergence_shortfall_bound +. adversary_overshoot_bound);
    expected_gap = k.gap_factor *. expected_adversary;
  }
