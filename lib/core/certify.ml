module I = Nakamoto_numerics.Interval

type certificate = {
  nu : float;
  radius : float;
  below_margin : I.t;
  above_margin : I.t;
}

let neat_criterion_interval ~c ~nu =
  if not (nu > 0. && nu < 0.5) then
    invalid_arg "Certify.neat_criterion_interval: nu outside (0, 1/2)";
  if c <= 0. then invalid_arg "Certify.neat_criterion_interval: c <= 0";
  let nu_i = I.point nu in
  let mu = I.one_minus nu_i in
  let ratio = I.div mu nu_i in
  let log_ratio = I.log ratio in
  (* nu < 1/2 makes mu/nu > 1 and the log positive, so the division below
     is well defined whenever the enclosure stays above zero. *)
  let threshold = I.div (I.mul (I.point 2.) mu) log_ratio in
  I.sub (I.point c) threshold

let certify_neat_numax ?(radius = 1e-9) ~c () =
  if c <= 0. then invalid_arg "Certify.certify_neat_numax: c <= 0";
  if radius <= 0. then invalid_arg "Certify.certify_neat_numax: radius <= 0";
  let nu = Bounds.neat_numax ~c in
  let below = nu -. radius and above = nu +. radius in
  if not (below > 0. && above < 0.5) then None
  else begin
    match
      ( neat_criterion_interval ~c ~nu:below,
        neat_criterion_interval ~c ~nu:above )
    with
    | below_margin, above_margin ->
      if I.strictly_positive below_margin && I.strictly_negative above_margin
      then Some { nu; radius; below_margin; above_margin }
      else None
    | exception Invalid_argument _ -> None
  end
