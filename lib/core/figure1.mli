(** Reproduction of the paper's Figure 1.

    The maximum tolerable adversarial fraction [nu] as a function of
    [c = 1/(p n Delta)] under: our consistency result (magenta), the PSS
    consistency result (blue), and the PSS attack (red) — at the paper's
    [n = 1e5], [Delta = 1e13] — plus, as extensions, the exact Theorem 1
    inversion and the exact-[epsilon1]-optimized Theorem 2 inversion. *)

type row = {
  c : float;
  ours_neat : float;  (** the magenta curve: inversion of [2mu/ln(mu/nu)] *)
  pss_consistency : float;  (** the blue curve *)
  pss_attack : float;  (** the red curve *)
  theorem1_exact : float;  (** extension: exact Ineq. 10 inversion *)
  theorem2_exact : float;  (** extension: Ineq. 11 optimized over eps1 *)
}

val default_c_grid : unit -> float list
(** 61 log-spaced points spanning [[0.1, 100]], the figure's x range. *)

val compute_row : ?n:float -> ?delta:float -> ?eps2:float -> c:float -> unit -> row
(** [compute_row ~c ()] evaluates all five curves at one abscissa.
    Defaults: [n = 1e5], [delta = 1e13], [eps2 = 1e-9].
    @raise Invalid_argument if [c <= 0.]. *)

val series : ?n:float -> ?delta:float -> ?eps2:float -> c_grid:float list ->
  unit -> row list
(** All rows of the figure. *)

val to_table : row list -> Nakamoto_numerics.Table.t
(** Tabular form for the bench harness and CSV export. *)

val to_plot : row list -> string
(** ASCII rendering with a log-scaled x axis — the terminal Figure 1. *)

val shape_invariants_hold : row list -> bool
(** The qualitative claims of the paper's figure discussion:
    ours >= PSS everywhere, attack >= ours everywhere, every curve
    non-decreasing in [c], PSS zero for [c <= 2]. *)
