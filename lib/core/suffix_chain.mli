(** The suffix-of-previous-and-current-states Markov chain [C_F]
    (Figure 2, Section V-A).

    States are the 2Δ+1 suffix classes of Eq. (29):
    - [Recent a] for [a = 0 .. delta-1]: the suffix [HN^{<=Δ-1}HN^a]
      (with [a = 0] meaning [HN^{<=Δ-1}H] — the last round was H and the
      H before it was at distance [<= Δ]);
    - [Deep]: [HN^{>=Δ}] — at least Δ trailing N rounds;
    - [Deep_recent b] for [b = 0 .. delta-1]: [HN^{>=Δ}HN^b] — an H broke
      a deep N run [b] rounds ago.

    The module provides the explicit chain (for any [delta] small enough
    to enumerate), the closed-form stationary distribution of
    Eq. (37a)–(37d) (for arbitrary [delta], in the log domain), and the
    online classifier that maps a state series to its suffix class — the
    bridge between simulation traces and the chain. *)

type state =
  | Recent of int  (** [HN^{<=Δ-1}HN^a], [a] in [0, delta-1] *)
  | Deep  (** [HN^{>=Δ}] *)
  | Deep_recent of int  (** [HN^{>=Δ}HN^b], [b] in [0, delta-1] *)

val state_count : delta:int -> int
(** [2 * delta + 1]. *)

val index_of_state : delta:int -> state -> int
(** Bijection onto [0 .. 2 delta] ([Recent a -> a], [Deep -> delta],
    [Deep_recent b -> delta + 1 + b]).
    @raise Invalid_argument on out-of-range components. *)

val state_of_index : delta:int -> int -> state
(** Inverse of {!index_of_state}. *)

val state_label : state -> string
(** Human-readable form, e.g. ["HN<=D-1.H.N^3"]. *)

val step : delta:int -> state -> h:bool -> state
(** [step ~delta s ~h] is the deterministic successor suffix class when the
    next round is H ([h = true]) or N — transition rules ①–④. *)

val build : delta:int -> alpha:float -> Nakamoto_markov.Chain.t
(** [build ~delta ~alpha] is the explicit 2Δ+1-state chain where each round
    is H with probability [alpha].
    @raise Invalid_argument unless [delta >= 1] and [alpha] in (0, 1). *)

val transitions : delta:int -> alpha:float -> int -> (int * float) list
(** [transitions ~delta ~alpha i] lists state [i]'s two transitions —
    the band-aware row generator behind {!build} and {!build_sparse}.
    @raise Invalid_argument as in {!build}, or on a bad index. *)

val build_sparse : delta:int -> alpha:float -> Nakamoto_markov.Sparse.t
(** [build_sparse ~delta ~alpha] emits {!transitions} straight into CSR
    form without materializing rows — 2 entries per state, so Δ in the
    thousands costs O(Δ) memory.
    @raise Invalid_argument as in {!build}. *)

val stationary_closed_form : delta:int -> alpha:float -> float array
(** Eq. (37): the stationary probabilities indexed by
    {!index_of_state}.  Sums to 1 exactly (up to rounding).
    @raise Invalid_argument as in {!build}. *)

val log_stationary : delta:float -> log_abar:float -> state:state -> float
(** Closed form in the log domain for arbitrary (real) [delta]:
    [log pi_F(state)].  [Recent a]/[Deep_recent b] components must still
    satisfy [0 <= a, b < delta].
    @raise Invalid_argument on out-of-range components, [delta < 1], or
    [log_abar >= 0.]. *)

val classify_series : delta:int -> Nakamoto_sim.Round_state.t array -> state option array
(** [classify_series ~delta states] computes [F_t] for every prefix of the
    series; [None] until the first H has appeared (before that the suffix
    matches no class).  Mirrors the paper's "after at least two H
    happened" caveat conservatively: a leading all-N prefix is
    unclassifiable, everything after the first H is. *)

val to_dot : delta:int -> alpha:float -> string
(** GraphViz rendering of the chain — the reproduction of Figure 2. *)
