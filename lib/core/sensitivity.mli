(** Sensitivity of the neat bound — "how much does a unit of c buy?"

    Along the boundary [c = T(nu)] with [T(nu) = 2 (1-nu) / L] and
    [L = ln ((1-nu)/nu)], implicit differentiation gives the
    designer-facing quantities: the slope [d nu_max / d c] (extra
    tolerable adversary per extra delay-per-block) and its elasticity.
    Both are validated against finite differences in the test suite. *)

val threshold_derivative : nu:float -> float
(** [T'(nu) = (2 / L^2) (1/nu - L)], using [dL/dnu = -1/(nu (1-nu))].
    Strictly positive on (0, 1/2) — the threshold rises with the
    adversary share (and [1/nu > L] there).
    @raise Invalid_argument unless [0 < nu < 1/2]. *)

val numax_slope : c:float -> float
(** [d nu_max / d c] at the boundary point for this [c], by the inverse
    function theorem: [1 / T'(numax c)].
    @raise Invalid_argument unless [c > 0]. *)

val numax_elasticity : c:float -> float
(** [(c / nu_max) * d nu_max / d c] — the percentage gain in tolerable
    adversary per percent increase in [c].  Large at small [c] (cheap
    safety), vanishing as [nu_max] saturates at 1/2. *)

val marginal_value_table : c_grid:float list -> Nakamoto_numerics.Table.t
(** Designer table: c, nu_max, slope, elasticity per grid point. *)
