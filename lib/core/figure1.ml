module Table = Nakamoto_numerics.Table
module Ascii_plot = Nakamoto_numerics.Ascii_plot

type row = {
  c : float;
  ours_neat : float;
  pss_consistency : float;
  pss_attack : float;
  theorem1_exact : float;
  theorem2_exact : float;
}

let default_c_grid () =
  let points = 61 in
  let lo = log10 0.1 and hi = log10 100. in
  List.init points (fun i ->
      10. ** (lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1))))

let compute_row ?(n = 1e5) ?(delta = 1e13) ?(eps2 = 1e-9) ~c () =
  if c <= 0. then invalid_arg "Figure1.compute_row: c must be positive";
  {
    c;
    ours_neat = Bounds.neat_numax ~c;
    pss_consistency = Bounds.pss_numax_closed ~c;
    pss_attack = Bounds.pss_attack_nu ~c;
    theorem1_exact = Bounds.theorem1_numax ~n ~delta ~c ();
    theorem2_exact = Bounds.theorem2_numax ~delta ~eps2 ~c;
  }

let series ?n ?delta ?eps2 ~c_grid () =
  List.map (fun c -> compute_row ?n ?delta ?eps2 ~c ()) c_grid

let to_table rows =
  let t =
    Table.create ~title:"Figure 1: max tolerable nu vs c (n=1e5, Delta=1e13)"
      ~columns:
        [
          "c";
          "ours (2mu/ln(mu/nu))";
          "PSS consistency";
          "PSS attack";
          "Thm1 exact";
          "Thm2 exact";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.Float r.c;
          Table.Float r.ours_neat;
          Table.Float r.pss_consistency;
          Table.Float r.pss_attack;
          Table.Float r.theorem1_exact;
          Table.Float r.theorem2_exact;
        ])
    rows;
  t

let to_plot rows =
  let pick f = List.map (fun r -> (r.c, f r)) rows in
  Ascii_plot.plot ~x_scale:Ascii_plot.Log10
    ~title:"Figure 1 reproduction: tolerable adversary fraction vs c"
    ~x_label:"c = 1/(p n Delta)" ~y_label:"nu"
    [
      { Ascii_plot.label = "ours: c > 2mu/ln(mu/nu)"; glyph = 'o';
        points = pick (fun r -> r.ours_neat) };
      { Ascii_plot.label = "PSS consistency"; glyph = '+';
        points = pick (fun r -> r.pss_consistency) };
      { Ascii_plot.label = "PSS attack"; glyph = 'x';
        points = pick (fun r -> r.pss_attack) };
    ]

let shape_invariants_hold rows =
  let ordered =
    List.for_all
      (fun r ->
        r.ours_neat >= r.pss_consistency -. 1e-12
        && r.pss_attack >= r.ours_neat -. 1e-12
        && r.ours_neat >= 0.
        && r.pss_attack <= 0.5)
      rows
  in
  let monotone get =
    let rec check = function
      | a :: (b :: _ as rest) -> get a <= get b +. 1e-9 && check rest
      | [ _ ] | [] -> true
    in
    check rows
  in
  let pss_zero_below_2 =
    List.for_all (fun r -> r.c > 2. || r.pss_consistency = 0.) rows
  in
  ordered
  && monotone (fun r -> r.ours_neat)
  && monotone (fun r -> r.pss_consistency)
  && monotone (fun r -> r.pss_attack)
  && pss_zero_below_2
