module Chain = Nakamoto_markov.Chain
module Table = Nakamoto_numerics.Table

type census = {
  delta : int;
  states : int;
  recent_states : int;
  deep_states : int;
  deep_recent_states : int;
  edges : int;
  irreducible : bool;
  aperiodic : bool;
  stationary_max_abs_error : float;
}

let census ~delta ~alpha =
  let chain = Suffix_chain.build ~delta ~alpha in
  let states = Chain.size chain in
  let count pred =
    let n = ref 0 in
    for i = 0 to states - 1 do
      if pred (Suffix_chain.state_of_index ~delta i) then incr n
    done;
    !n
  in
  let edges =
    let n = ref 0 in
    for i = 0 to states - 1 do
      n := !n + List.length (Chain.row chain i)
    done;
    !n
  in
  let closed = Suffix_chain.stationary_closed_form ~delta ~alpha in
  (* Dense LU below the crossover (bit-pinned historical results), the
     sparse substrate above it — Δ in the thousands stays affordable. *)
  let solved = Chain.stationary_auto chain in
  let err = ref 0. in
  Array.iteri
    (fun i x ->
      let e = Float.abs (x -. solved.(i)) in
      if e > !err then err := e)
    closed;
  {
    delta;
    states;
    recent_states = count (function Suffix_chain.Recent _ -> true | _ -> false);
    deep_states = count (function Suffix_chain.Deep -> true | _ -> false);
    deep_recent_states =
      count (function Suffix_chain.Deep_recent _ -> true | _ -> false);
    edges;
    irreducible = Chain.is_irreducible chain;
    aperiodic = Chain.period chain = 1;
    stationary_max_abs_error = !err;
  }

let to_table censuses =
  let t =
    Table.create ~title:"Figure 2: suffix chain C_F structural census"
      ~columns:
        [
          "Delta"; "states"; "recent"; "deep"; "deep+recent"; "edges";
          "irreducible"; "aperiodic"; "max |Eq.37 - solve|";
        ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          Table.Int c.delta;
          Table.Int c.states;
          Table.Int c.recent_states;
          Table.Int c.deep_states;
          Table.Int c.deep_recent_states;
          Table.Int c.edges;
          Table.Text (string_of_bool c.irreducible);
          Table.Text (string_of_bool c.aperiodic);
          Table.Sci c.stationary_max_abs_error;
        ])
    censuses;
  t

let dot = Suffix_chain.to_dot
