(** Certified bound inversions.

    {!Bounds.neat_numax} answers with a float from a bisection; this
    module upgrades the answer to a machine-checked bracket: using
    outward-rounded interval arithmetic ({!Nakamoto_numerics.Interval}),
    it proves that the safety criterion [c - 2 mu / ln (mu/nu)] is
    strictly positive just below the answer and strictly negative just
    above it — so the true [nu_max] provably lies within [radius] of the
    returned float, rounding errors included. *)

type certificate = {
  nu : float;  (** the certified answer *)
  radius : float;  (** half-width of the proven bracket *)
  below_margin : Nakamoto_numerics.Interval.t;
      (** interval value of the criterion at [nu - radius]; strictly
          positive *)
  above_margin : Nakamoto_numerics.Interval.t;
      (** interval value at [nu + radius]; strictly negative *)
}

val neat_criterion_interval : c:float -> nu:float -> Nakamoto_numerics.Interval.t
(** Interval enclosure of [c - 2 (1-nu) / ln ((1-nu)/nu)] at the exact
    float [nu].
    @raise Invalid_argument unless [0 < nu < 1/2] and [c > 0]. *)

val certify_neat_numax : ?radius:float -> c:float -> unit -> certificate option
(** [certify_neat_numax ~c ()] runs the bisection and attempts the
    interval proof at distance [radius] (default [1e-9]) on each side.
    [None] when the proof fails — e.g. a [radius] so small that the
    interval enclosures straddle zero, or a [c] whose answer sits at the
    domain edge.  A returned certificate is a proof.
    @raise Invalid_argument if [c <= 0] or [radius <= 0]. *)
