module Special = Nakamoto_numerics.Special
module Chain = Nakamoto_markov.Chain
module Round_state = Nakamoto_sim.Round_state

type state = Recent of int | Deep | Deep_recent of int

let state_count ~delta = (2 * delta) + 1

let check_delta delta =
  if delta < 1 then invalid_arg "Suffix_chain: delta must be >= 1"

let index_of_state ~delta s =
  check_delta delta;
  match s with
  | Recent a ->
    if a < 0 || a >= delta then invalid_arg "Suffix_chain: Recent index range";
    a
  | Deep -> delta
  | Deep_recent b ->
    if b < 0 || b >= delta then
      invalid_arg "Suffix_chain: Deep_recent index range";
    delta + 1 + b

let state_of_index ~delta i =
  check_delta delta;
  if i < 0 || i > 2 * delta then invalid_arg "Suffix_chain: index out of range";
  if i < delta then Recent i
  else if i = delta then Deep
  else Deep_recent (i - delta - 1)

let state_label = function
  | Recent 0 -> "HN<=D-1.H"
  | Recent a -> Printf.sprintf "HN<=D-1.H.N^%d" a
  | Deep -> "HN>=D"
  | Deep_recent 0 -> "HN>=D.H"
  | Deep_recent b -> Printf.sprintf "HN>=D.H.N^%d" b

(* Transition rules ①–④ of Section V-A. *)
let step ~delta s ~h =
  check_delta delta;
  match (s, h) with
  | (Recent _ | Deep_recent _), true -> Recent 0
  | Deep, true -> Deep_recent 0
  | Deep, false -> Deep
  | Recent a, false -> if a = delta - 1 then Deep else Recent (a + 1)
  | Deep_recent b, false -> if b = delta - 1 then Deep else Deep_recent (b + 1)

let check_alpha alpha =
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Suffix_chain: alpha must lie in (0, 1)"

let transitions ~delta ~alpha i =
  check_delta delta;
  check_alpha alpha;
  let s = state_of_index ~delta i in
  let idx s = index_of_state ~delta s in
  [
    (idx (step ~delta s ~h:true), alpha);
    (idx (step ~delta s ~h:false), 1. -. alpha);
  ]

let build ~delta ~alpha =
  check_delta delta;
  check_alpha alpha;
  let rows =
    Array.init (state_count ~delta) (fun i -> transitions ~delta ~alpha i)
  in
  Chain.create
    ~labels:(fun i -> state_label (state_of_index ~delta i))
    ~size:(state_count ~delta) ~rows ()

let build_sparse ~delta ~alpha =
  check_delta delta;
  check_alpha alpha;
  let n = state_count ~delta in
  Nakamoto_markov.Sparse.of_fn ~rows:n ~cols:n (transitions ~delta ~alpha)

let stationary_closed_form ~delta ~alpha =
  check_delta delta;
  check_alpha alpha;
  let abar = 1. -. alpha in
  let abar_delta = abar ** float_of_int delta in
  let pi = Array.make (state_count ~delta) 0. in
  for a = 0 to delta - 1 do
    (* Eq. (37a)-(37b). *)
    pi.(index_of_state ~delta (Recent a)) <-
      alpha *. (1. -. abar_delta) *. (abar ** float_of_int a)
  done;
  pi.(index_of_state ~delta Deep) <- abar_delta;
  for b = 0 to delta - 1 do
    (* Eq. (37d). *)
    pi.(index_of_state ~delta (Deep_recent b)) <-
      alpha *. abar_delta *. (abar ** float_of_int b)
  done;
  pi

let log_stationary ~delta ~log_abar ~state =
  if delta < 1. then invalid_arg "Suffix_chain.log_stationary: delta < 1";
  if log_abar >= 0. then
    invalid_arg "Suffix_chain.log_stationary: log_abar must be negative";
  let in_range x = x >= 0. && x < delta in
  let log_alpha = Special.log_one_minus_exp log_abar in
  let log_abar_delta = delta *. log_abar in
  match state with
  | Recent a ->
    if not (in_range (float_of_int a)) then
      invalid_arg "Suffix_chain.log_stationary: Recent index range";
    log_alpha
    +. Special.log_one_minus_exp log_abar_delta
    +. (float_of_int a *. log_abar)
  | Deep -> log_abar_delta
  | Deep_recent b ->
    if not (in_range (float_of_int b)) then
      invalid_arg "Suffix_chain.log_stationary: Deep_recent index range";
    log_alpha +. log_abar_delta +. (float_of_int b *. log_abar)

let classify_series ~delta states =
  check_delta delta;
  let current = ref None in
  let h_seen = ref false in
  let n_run = ref 0 in
  Array.map
    (fun s ->
      (if Round_state.is_h s then begin
         (match !current with
         | Some st -> current := Some (step ~delta st ~h:true)
         | None ->
           (* A second H with the last gap <= delta-1 pins the class. *)
           if !h_seen then current := Some (Recent 0));
         h_seen := true;
         n_run := 0
       end
       else
         match !current with
         | Some st -> current := Some (step ~delta st ~h:false)
         | None ->
           if !h_seen then begin
             incr n_run;
             (* Delta consecutive N after an H pins the class to Deep. *)
             if !n_run >= delta then current := Some Deep
           end);
      !current)
    states

let to_dot ~delta ~alpha =
  check_delta delta;
  check_alpha alpha;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph suffix_chain {\n  rankdir=LR;\n";
  for i = 0 to state_count ~delta - 1 do
    let s = state_of_index ~delta i in
    Buffer.add_string buf
      (Printf.sprintf "  s%d [label=\"%s\"];\n" i (state_label s))
  done;
  for i = 0 to state_count ~delta - 1 do
    let s = state_of_index ~delta i in
    let add ~h ~p =
      let j = index_of_state ~delta (step ~delta s ~h) in
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=\"%s %.4g\"];\n" i j
           (if h then "H" else "N")
           p)
    in
    add ~h:true ~p:alpha;
    add ~h:false ~p:(1. -. alpha)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
