(* See kiffer_comparison.mli for the reconstruction caveats. *)

module Chain = Nakamoto_markov.Chain

type lumped = { chain : Chain.t; quiet : int; active : int }

let lumped_chain ~alpha ~delta =
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Kiffer_comparison.lumped_chain: alpha outside (0, 1)";
  if delta < 1 then invalid_arg "Kiffer_comparison.lumped_chain: delta < 1";
  let abar = 1. -. alpha in
  (* Two states: Quiet (>= Delta silent rounds since the last honest
     success) and Active (anything else).  The lumping forces a
     geometric approximation of the "Delta consecutive N" event. *)
  let to_quiet = abar ** float_of_int delta in
  let rows =
    [|
      (* Quiet: an H wakes it, otherwise stays quiet. *)
      [ (1, alpha); (0, 1. -. alpha) ];
      (* Active: reaches Quiet with the lumped probability, else stays. *)
      [ (0, to_quiet); (1, 1. -. to_quiet) ];
    |]
  in
  { chain = Chain.create ~size:2 ~rows (); quiet = 0; active = 1 }

let lumped_quiet_probability ~alpha ~delta =
  let l = lumped_chain ~alpha ~delta in
  (Chain.stationary_linear_solve l.chain).(l.quiet)

let exact_quiet_probability ~alpha ~delta =
  (* pi(HN^{>=Delta}) from Eq. 37c. *)
  (1. -. alpha) ** float_of_int delta

let lumping_error ~alpha ~delta =
  Float.abs
    (lumped_quiet_probability ~alpha ~delta -. exact_quiet_probability ~alpha ~delta)

let ell_correct (p : Params.t) = 1. /. Params.alpha p
let ell_flawed (p : Params.t) = 1. /. Params.honest_rate p

let waiting_time_ratio p = ell_correct p /. ell_flawed p

let rate_with_ell (p : Params.t) ~ell =
  if ell <= 0. then invalid_arg "Kiffer_comparison.rate_with_ell: ell <= 0";
  (* Renewal-style opportunity rate: one candidate per H-cycle of expected
     length ell, succeeding when the Delta rounds on each side are silent
     and the success is unique (alpha1 / alpha of H-rounds). *)
  let per_cycle =
    exp (2. *. p.delta *. Params.log_abar p)
    *. (Params.alpha1 p /. Params.alpha p)
  in
  per_cycle /. ell

let correct_rate p = rate_with_ell p ~ell:(ell_correct p)
let flawed_rate p = rate_with_ell p ~ell:(ell_flawed p)

let to_table points =
  let t =
    Nakamoto_numerics.Table.create
      ~title:
        "Kiffer [6] reconstruction: two-state lumping error and the \
         1/(mu p n) vs 1/alpha waiting-time error"
      ~columns:
        [ "alpha"; "Delta"; "pi(quiet) lumped"; "pi(quiet) exact";
          "lumping err"; "ell ratio (flawed/correct)"; "rate overstatement" ]
  in
  List.iter
    (fun (p : Params.t) ->
      let alpha = Params.alpha p in
      let delta = int_of_float p.delta in
      Nakamoto_numerics.Table.add_row t
        [
          Nakamoto_numerics.Table.Float alpha;
          Nakamoto_numerics.Table.Int delta;
          Nakamoto_numerics.Table.Float (lumped_quiet_probability ~alpha ~delta);
          Nakamoto_numerics.Table.Float (exact_quiet_probability ~alpha ~delta);
          Nakamoto_numerics.Table.Sci (lumping_error ~alpha ~delta);
          Nakamoto_numerics.Table.Float (ell_correct p /. ell_flawed p);
          Nakamoto_numerics.Table.Float (flawed_rate p /. correct_rate p);
        ])
    points;
  t
