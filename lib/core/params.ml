module Special = Nakamoto_numerics.Special

type t = { n : float; delta : float; p : float; nu : float }

let create ~n ~delta ~p ~nu =
  if not (Float.is_finite n && n >= 4.) then
    invalid_arg "Params.create: n must be >= 4 (Eq. 3)";
  if not (Float.is_finite delta && delta >= 1.) then
    invalid_arg "Params.create: delta must be >= 1";
  if not (p > 0. && p < 1.) then invalid_arg "Params.create: p must lie in (0, 1)";
  if not (nu >= 0. && nu < 0.5) then
    invalid_arg "Params.create: nu must lie in [0, 1/2) (Eq. 2)";
  { n; delta; p; nu }

let of_c ~n ~delta ~nu ~c =
  if c <= 0. then invalid_arg "Params.of_c: c must be positive";
  create ~n ~delta ~p:(1. /. (c *. n *. delta)) ~nu

let of_sim_config (cfg : Nakamoto_sim.Config.t) =
  create ~n:(float_of_int cfg.n) ~delta:(float_of_int cfg.delta) ~p:cfg.p
    ~nu:(1. -. Nakamoto_sim.Config.mu cfg)

let mu t = 1. -. t.nu
let c t = 1. /. (t.p *. t.n *. t.delta)

let log_ratio t =
  if t.nu = 0. then invalid_arg "Params.log_ratio: requires nu > 0";
  log (mu t /. t.nu)

let log_abar t = Special.log_pow1p ~base:(-.t.p) ~exponent:(mu t *. t.n)
let abar t = exp (log_abar t)
let alpha t = -.Special.expm1 (log_abar t)

let log_alpha1 t =
  log (t.p *. mu t *. t.n)
  +. Special.log_pow1p ~base:(-.t.p) ~exponent:((mu t *. t.n) -. 1.)

let alpha1 t = exp (log_alpha1 t)
let adversary_rate t = t.p *. t.nu *. t.n

let log_adversary_rate t =
  if t.nu = 0. then neg_infinity else log (adversary_rate t)

let honest_rate t = t.p *. mu t *. t.n

let pp fmt t =
  Format.fprintf fmt "{n=%g; delta=%g; p=%g; nu=%g; c=%g}" t.n t.delta t.p t.nu
    (c t)

let bitcoin_like = of_c ~n:1e5 ~delta:1. ~nu:0.25 ~c:60.
let figure1_point ~nu ~c = of_c ~n:1e5 ~delta:1e13 ~nu ~c
