module Special = Nakamoto_numerics.Special

let check_eps ~eps1 ~eps2 =
  if not (eps1 > 0. && eps1 < 1.) then
    invalid_arg "Lemmas: eps1 must lie in (0, 1)";
  if not (eps2 > 0.) then invalid_arg "Lemmas: eps2 must be positive"

let delta4_default ~eps1 ~eps2 ~l =
  check_eps ~eps1 ~eps2;
  if l <= 0. then invalid_arg "Lemmas.delta4_default: l must be positive";
  (eps1 +. eps2) *. l /. (eps1 +. eps2 +. ((1. -. eps1) *. (l +. 1.)))

let delta1_of ~delta4 ~eps1 ~l =
  ((1. +. delta4) *. (1. -. (eps1 *. l /. (l +. 1.)))) -. 1.

let pn_condition_holds ~eps1 (p : Params.t) =
  if not (eps1 > 0. && eps1 < 1.) then
    invalid_arg "Lemmas.pn_condition_holds: eps1 must lie in (0, 1)";
  let l = Params.log_ratio p in
  p.p *. p.n <= eps1 *. l /. ((l +. 1.) *. Params.mu p)

(* Ineq. (66), log domain:
   log abar >= (log (1+delta1) - log (1-p mu n) + log (nu/mu)) / (2 delta). *)
let lemma2_premise ~delta1 (p : Params.t) =
  let pmun = p.p *. Params.mu p *. p.n in
  if not (pmun > 0. && pmun < 1.) then false
  else
    let rhs =
      (log1p delta1 -. Special.log1p (-.pmun) -. Params.log_ratio p)
      /. (2. *. p.delta)
    in
    Params.log_abar p >= rhs

let lemma2_conclusion ~delta1 p = Bounds.theorem1_margin ~delta1 p >= 0.

let lemma3_conclusion ~delta1 ~delta4 (p : Params.t) =
  let pmun = p.p *. Params.mu p *. p.n in
  if not (pmun > 0. && pmun < 1.) then false
  else
    (log1p delta1 -. Special.log1p (-.pmun)) /. (2. *. p.delta)
    <= log1p (delta4 /. (2. *. p.delta))

let check_delta4_range ~delta4 (p : Params.t) =
  let l = Params.log_ratio p in
  if not (delta4 > 0. && delta4 < l) then
    invalid_arg "Lemmas: requires 0 < delta4 < ln (mu/nu) (Ineq. 73)"

(* log of the recurring quantity (1 + delta4/(2 delta)) (nu/mu)^(1/(2 delta));
   negative exactly when Proposition 2 holds. *)
let log_inner ~delta4 (p : Params.t) =
  log1p (delta4 /. (2. *. p.delta))
  -. (Params.log_ratio p /. (2. *. p.delta))

let lemma4_c_bound ~delta4 (p : Params.t) =
  check_delta4_range ~delta4 p;
  let mun = Params.mu p *. p.n in
  let one_minus_root = -.Special.expm1 (log_inner ~delta4 p /. mun) in
  1. /. (p.n *. p.delta *. one_minus_root)

let lemma4_conclusion ~delta4 (p : Params.t) =
  Params.log_abar p >= log_inner ~delta4 p

let proposition2_holds ~delta4 (p : Params.t) = log_inner ~delta4 p < 0.

let lemma5_c_bound ~delta4 (p : Params.t) =
  check_delta4_range ~delta4 p;
  Params.mu p /. (p.delta *. -.Special.expm1 (log_inner ~delta4 p))

(* 1 - (nu/mu)^(1/(2 delta)) = -expm1 (-l / (2 delta)). *)
let one_minus_ratio_root (p : Params.t) =
  -.Special.expm1 (-.Params.log_ratio p /. (2. *. p.delta))

let lemma6_c_bound ~delta4 (p : Params.t) =
  check_delta4_range ~delta4 p;
  let l = Params.log_ratio p in
  Params.mu p
  /. (p.delta *. one_minus_ratio_root p)
  *. (1. +. (delta4 /. (l -. delta4)))

let lemma7_middle (p : Params.t) = 1. /. (p.delta *. one_minus_ratio_root p)

let lemma7_holds (p : Params.t) =
  let l = Params.log_ratio p in
  let mid = lemma7_middle p in
  (* Allow one ulp of slack: at huge delta the middle term sits within
     rounding of its lower bound 2/l. *)
  let tol = 1e-12 *. Float.max (Float.abs mid) (2. /. l) in
  2. /. l <= mid +. tol && mid <= (2. /. l) +. (1. /. p.delta) +. tol

let lemma8_c_bound ~delta4 (p : Params.t) =
  check_delta4_range ~delta4 p;
  let l = Params.log_ratio p in
  let mu = Params.mu p in
  ((2. *. mu /. l) +. (mu /. p.delta)) *. (1. +. (delta4 /. (l -. delta4)))

let lemma8_holds ~eps1 ~eps2 (p : Params.t) =
  let l = Params.log_ratio p in
  let delta4 = delta4_default ~eps1 ~eps2 ~l in
  1. +. (delta4 /. (l -. delta4)) < (1. +. eps2) /. (1. -. eps1)

let log_min_stationary_fp (p : Params.t) =
  let pmun = p.p *. Params.mu p *. p.n in
  if pmun <= 0. then invalid_arg "Lemmas.log_min_stationary_fp: p mu n = 0";
  let log_abar = Params.log_abar p in
  let log_alpha = log (Params.alpha p) in
  let log_abar_delta = p.delta *. log_abar in
  let log_one_minus = Special.log_one_minus_exp log_abar_delta in
  let log_min_detail = Float.min (log pmun) log_abar in
  log_alpha
  +. ((p.delta -. 1.) *. log_abar)
  +. Float.min log_one_minus log_abar_delta
  +. ((p.delta +. 1.) *. log_min_detail)

let pi_norm_bound p = exp (-0.5 *. log_min_stationary_fp p)

type chain_step = { name : string; holds : bool; detail : string }

type chain_report = {
  params : Params.t;
  eps1 : float;
  eps2 : float;
  delta4 : float;
  delta1 : float;
  steps : chain_step list;
  all_hold : bool;
}

let verify_chain ~eps1 ~eps2 (p : Params.t) =
  check_eps ~eps1 ~eps2;
  let l = Params.log_ratio p in
  let c = Params.c p in
  let delta4 = delta4_default ~eps1 ~eps2 ~l in
  let delta1 = delta1_of ~delta4 ~eps1 ~l in
  let cmp name lhs rhs =
    {
      name;
      holds = lhs <= rhs;
      detail = Printf.sprintf "%.12g <= %.12g" lhs rhs;
    }
  in
  let flag name holds detail = { name; holds; detail } in
  let bound_51 =
    ((2. *. Params.mu p /. l) +. (1. /. p.delta)) *. (1. +. eps2) /. (1. -. eps1)
  in
  let bound_83 = lemma8_c_bound ~delta4 p in
  let bound_80 = lemma6_c_bound ~delta4 p in
  let bound_77 = lemma5_c_bound ~delta4 p in
  let bound_74 = lemma4_c_bound ~delta4 p in
  let steps =
    [
      flag "(50) pn precondition"
        (pn_condition_holds ~eps1 p)
        (Printf.sprintf "pn = %.6g vs eps1 l/((l+1) mu) = %.6g" (p.p *. p.n)
           (eps1 *. l /. ((l +. 1.) *. Params.mu p)));
      cmp "(51) c >= first branch of Ineq. 11" bound_51 c;
      flag "(60)-(61) delta4, delta1 positive"
        (delta4 > 0. && delta1 > 0.)
        (Printf.sprintf "delta4 = %.6g, delta1 = %.6g" delta4 delta1);
      flag "(73) delta4 < l" (delta4 < l)
        (Printf.sprintf "delta4 = %.6g < l = %.6g" delta4 l);
      cmp "(58<=59) Lemma 8: bound(83) <= bound(51)" bound_83 bound_51;
      cmp "(57<=58) Lemma 7: bound(80) <= bound(83)" bound_80 bound_83;
      cmp "(56<=57) Lemma 6: bound(77) <= bound(80)" bound_77 bound_80;
      cmp "(55<=56) Lemma 5: bound(74) <= bound(77)" bound_74 bound_77;
      flag "(54) Lemma 4: c >= bound(74) gives Ineq. 71"
        (not (c >= bound_74) || lemma4_conclusion ~delta4 p)
        (Printf.sprintf "c = %.6g, bound(74) = %.6g, log abar = %.6g, log inner = %.6g"
           c bound_74 (Params.log_abar p) (log_inner ~delta4 p));
      flag "(53) Lemma 3: Ineq. 70"
        (lemma3_conclusion ~delta1 ~delta4 p)
        "((1+delta1)/(1-p mu n))^(1/2delta) <= 1 + delta4/(2delta)";
      flag "(52) Lemma 2: Ineq. 66 gives Ineq. 10"
        (not (lemma2_premise ~delta1 p) || lemma2_conclusion ~delta1 p)
        (Printf.sprintf "theorem1 margin at delta1: %.6g"
           (Bounds.theorem1_margin ~delta1 p));
      flag "(10) Theorem 1 condition (final)"
        (lemma2_conclusion ~delta1 p)
        (Printf.sprintf "margin = %.6g" (Bounds.theorem1_margin ~delta1 p));
    ]
  in
  {
    params = p;
    eps1;
    eps2;
    delta4;
    delta1;
    steps;
    all_hold = List.for_all (fun s -> s.holds) steps;
  }
