module Chain = Nakamoto_markov.Chain

type detailed = N | H1 | Hm

let detailed_probability (p : Params.t) = function
  | N -> Params.abar p
  | H1 -> Params.alpha1 p
  | Hm -> Params.alpha p -. Params.alpha1 p

let log_convergence_rate (p : Params.t) =
  (2. *. p.delta *. Params.log_abar p) +. Params.log_alpha1 p

let convergence_rate p = exp (log_convergence_rate p)

let expected_convergence_count p ~horizon =
  if horizon < 0 then
    invalid_arg "Conv_chain.expected_convergence_count: negative horizon";
  float_of_int horizon *. convergence_rate p

let expected_adversary_blocks (p : Params.t) ~horizon =
  if horizon < 0 then
    invalid_arg "Conv_chain.expected_adversary_blocks: negative horizon";
  float_of_int horizon *. Params.adversary_rate p

type explicit = {
  chain : Chain.t;
  delta : int;
  convergence_state : int;
}

let detailed_code = function N -> 0 | H1 -> 1 | Hm -> 2
let detailed_of_code = function
  | 0 -> N
  | 1 -> H1
  | 2 -> Hm
  | _ -> invalid_arg "Conv_chain: bad detailed code"

let window_size ~delta = delta + 1

let pow3 k =
  let rec go acc k = if k = 0 then acc else go (3 * acc) (k - 1) in
  go 1 k

let index_of ~delta suffix window =
  if List.length window <> window_size ~delta then
    invalid_arg "Conv_chain.index_of: window must have delta + 1 entries";
  let w_index =
    List.fold_left (fun acc d -> (3 * acc) + detailed_code d) 0 window
  in
  (Suffix_chain.index_of_state ~delta suffix * pow3 (window_size ~delta))
  + w_index

let state_of ~delta index =
  let base = pow3 (window_size ~delta) in
  if index < 0 || index >= Suffix_chain.state_count ~delta * base then
    invalid_arg "Conv_chain.state_of: index out of range";
  let suffix = Suffix_chain.state_of_index ~delta (index / base) in
  let rec decode acc k rem =
    if k = 0 then acc
    else decode (detailed_of_code (rem mod 3) :: acc) (k - 1) (rem / 3)
  in
  (suffix, decode [] (window_size ~delta) (index mod base))

let is_h_detailed = function N -> false | H1 | Hm -> true

(* Renormalized detailed probabilities: the closed forms sum to 1 only up
   to rounding, and Chain.create insists on exact rows. *)
let normalized_probs caller (p : Params.t) =
  let probs = [ (N, detailed_probability p N); (H1, detailed_probability p H1);
                (Hm, detailed_probability p Hm) ] in
  List.iter
    (fun (_, q) ->
      if not (q > 0.) then
        invalid_arg
          (caller ^ ": every detailed probability must be positive"))
    probs;
  let total = List.fold_left (fun acc (_, q) -> acc +. q) 0. probs in
  List.map (fun (d, q) -> (d, q /. total)) probs

(* The band-aware row: shift the oldest window symbol into the suffix
   class, append each of the three possible new symbols. *)
let transition_row ~delta probs i =
  let suffix, window = state_of ~delta i in
  match window with
  | [] -> assert false
  | oldest :: rest ->
    let suffix' = Suffix_chain.step ~delta suffix ~h:(is_h_detailed oldest) in
    List.map (fun (d, q) -> (index_of ~delta suffix' (rest @ [ d ]), q)) probs

let convergence_index ~delta =
  index_of ~delta Suffix_chain.Deep (H1 :: List.init delta (fun _ -> N))

let build_explicit ~delta (p : Params.t) =
  if delta < 1 || delta > 6 then
    invalid_arg "Conv_chain.build_explicit: delta must lie in [1, 6]";
  let probs = normalized_probs "Conv_chain.build_explicit" p in
  let size = Suffix_chain.state_count ~delta * pow3 (window_size ~delta) in
  let rows = Array.init size (fun i -> transition_row ~delta probs i) in
  let chain = Chain.create ~size ~rows () in
  { chain; delta; convergence_state = convergence_index ~delta }

let build_sparse ~delta (p : Params.t) =
  (* The CSR build never materializes the row array, so the cap can sit
     above the dense builder's: (2*8+1) * 3^9 = 334_611 states, 3 entries
     each. *)
  if delta < 1 || delta > 8 then
    invalid_arg "Conv_chain.build_sparse: delta must lie in [1, 8]";
  let probs = normalized_probs "Conv_chain.build_sparse" p in
  let size = Suffix_chain.state_count ~delta * pow3 (window_size ~delta) in
  Nakamoto_markov.Sparse.of_fn ~rows:size ~cols:size
    (transition_row ~delta probs)

let product_stationary ~delta (p : Params.t) ~index =
  let suffix, window = state_of ~delta index in
  let pi_f =
    exp
      (Suffix_chain.log_stationary ~delta:(float_of_int delta)
         ~log_abar:(Params.log_abar p) ~state:suffix)
  in
  List.fold_left (fun acc d -> acc *. detailed_probability p d) pi_f window

type cross_check = {
  closed_form : float;
  product_form : float;
  linear_solve : float;
  power_iteration : float;
}

let stationary_cross_check ~delta p =
  let e = build_explicit ~delta p in
  let pi_solve = Chain.stationary_linear_solve e.chain in
  let pi_power = Chain.stationary_power_iteration e.chain in
  {
    closed_form = convergence_rate p;
    product_form = product_stationary ~delta p ~index:e.convergence_state;
    linear_solve = pi_solve.(e.convergence_state);
    power_iteration = pi_power.(e.convergence_state);
  }

module Sparse = Nakamoto_markov.Sparse

type sparse_cross_check = {
  eq44 : float;
  eq40 : float;
  sparse_stationary : float;
  sparse_power : float;
}

let stationary_cross_check_sparse ?(jobs = 1) ~delta p =
  let sp = build_sparse ~delta p in
  let target = convergence_index ~delta in
  let pi_stationary =
    match Sparse.stationary_censor sp with
    | Some pi -> pi
    | None -> Sparse.stationary_power sp
  in
  let pi_power =
    if jobs > 1 then
      Sparse.Pool.with_pool ~jobs (fun pool -> Sparse.stationary_power ~pool sp)
    else Sparse.stationary_power sp
  in
  {
    eq44 = convergence_rate p;
    eq40 = product_stationary ~delta p ~index:target;
    sparse_stationary = pi_stationary.(target);
    sparse_power = pi_power.(target);
  }
