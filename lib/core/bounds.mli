(** The consistency bounds compared in the paper's Figure 1.

    Three families, each both as "minimum safe [c] given [nu]" and as
    "maximum tolerable [nu] given [c]" (the figure's y axis):

    - {b ours} — the neat bound [c > 2 mu / ln (mu/nu)] (Theorem 2) plus
      its exact finite-[Delta] refinements (Theorem 1's Ineq. 10 and
      Theorem 3's Ineq. 50–51);
    - {b PSS consistency} — Pass–Seeman–Shelat's
      [alpha (1 - (2 Delta + 2) alpha) > beta], with the paper's closed
      approximation [nu < (2 - c + sqrt (c^2 - 2 c)) / 2] for [c > 2];
    - {b PSS attack} — the Remark 8.5 attack succeeding when
      [1/c > 1/nu - 1/(1-nu)], i.e. [nu > (2c + 1 - sqrt (4c^2 + 1)) / 2].

    Inversions are bisections on monotone functions of [nu] over
    (0, 1/2). *)

val neat_c_min : nu:float -> float
(** [neat_c_min ~nu] is [2 (1-nu) / ln ((1-nu)/nu)].
    @raise Invalid_argument unless [0. < nu && nu < 0.5]. *)

val neat_numax : c:float -> float
(** [neat_numax ~c] inverts {!neat_c_min}: the supremum of tolerable [nu].
    Approaches [0.5] as [c] grows and [0.] as [c -> 0].
    @raise Invalid_argument unless [c > 0.]. *)

val pss_consistency_holds : Params.t -> bool
(** The exact PSS condition [alpha (1 - (2 Delta + 2) alpha) > beta]
    at the given parameters ([beta = nu n p]). *)

val pss_numax_closed : c:float -> float
(** The paper's closed form of the PSS bound: [0.] for [c <= 2], else
    [(2. -. c +. sqrt (c*c -. 2.*.c)) /. 2.].
    @raise Invalid_argument unless [c > 0.]. *)

val pss_numax_exact : n:float -> delta:float -> c:float -> float
(** Inverts the exact PSS condition in [nu] at fixed [n, delta, c] by
    bisection.  Returns [0.] when even [nu -> 0] fails the condition.
    @raise Invalid_argument on non-positive arguments. *)

val pss_attack_nu : c:float -> float
(** [pss_attack_nu ~c] is the attack threshold
    [(2c + 1 - sqrt (4 c^2 + 1)) / 2]: consistency is provably broken for
    [nu] above it.  @raise Invalid_argument unless [c > 0.]. *)

val theorem1_margin : ?delta1:float -> Params.t -> float
(** [theorem1_margin p] is the log-domain slack of Ineq. (10):
    [2 Delta log abar + log alpha1 - log ((1+delta1) p nu n)].
    Positive iff Theorem 1's condition holds ([delta1] defaults to [0.],
    the boundary).  [infinity] when [nu = 0.].
    @raise Invalid_argument if [delta1 < 0.]. *)

val theorem1_holds : ?delta1:float -> Params.t -> bool
(** [theorem1_holds p] is [theorem1_margin p > 0.]. *)

val theorem1_numax :
  ?delta1:float -> n:float -> delta:float -> c:float -> unit -> float
(** Largest [nu] satisfying Ineq. (10) at fixed [n, delta, c] (bisection on
    the margin).  Returns [0.] when no positive [nu] qualifies. *)

val theorem2_c_min : nu:float -> delta:float -> eps1:float -> eps2:float -> float
(** Ineq. (11) verbatim:
    [max ((2mu/L + 1/Delta) (1+eps2)/(1-eps1)) ((L+1) mu / (eps1 Delta L))].
    @raise Invalid_argument unless [0 < eps1 < 1], [eps2 > 0],
    [0 < nu < 1/2], [delta >= 1]. *)

val theorem2_c_min_optimal : nu:float -> delta:float -> eps2:float -> float
(** [theorem2_c_min ~eps1*] minimized over [eps1]: the two branches of the
    max cross where they are equal, giving the closed form
    [(2mu/L + 1/Delta)(1+eps2) + (L+1) mu / (Delta L)].
    @raise Invalid_argument per {!theorem2_c_min}. *)

val theorem2_numax : delta:float -> eps2:float -> c:float -> float
(** Inverts {!theorem2_c_min_optimal} in [nu] by bisection; [0.] when no
    positive [nu] qualifies. *)

val flawed_alpha1 : Params.t -> float
(** The per-honest-block (rather than per-[H]-round) accounting that the
    paper identifies as the error in Kiffer et al. [6] — using expected
    blocks [p mu n] where the exact single-success probability [alpha1]
    belongs (their [1/(mu p)] vs the correct [1/alpha]).  Returned so the
    ablation bench can show the resulting bound shift; see DESIGN.md #3. *)

val flawed_theorem1_margin : Params.t -> float
(** {!theorem1_margin} with {!flawed_alpha1} substituted for [alpha1]. *)
