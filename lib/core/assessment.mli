(** One-call security assessment of a parameter point.

    Everything a protocol designer asks of this library in a single
    structured verdict: where the point sits relative to every bound,
    with how much margin, and what it implies operationally (confirmation
    depth, growth/quality envelopes).  This is the API the README's
    "thirty-second tour" builds toward; the CLI's [assess] subcommand
    renders it. *)

type zone =
  | Safe  (** above our bound: consistency guaranteed (Theorem 2) *)
  | Gap
      (** between our bound and the PSS attack line: no guarantee, no
          known attack — the open region of the paper's conclusion *)
  | Broken  (** at or below the PSS attack line: provably attackable *)

type suffix_diagnostics = {
  suffix_states : int;  (** [2 delta + 1] *)
  suffix_sparse : bool;
      (** whether the solve ran above {!Nakamoto_markov.Chain.sparse_crossover} *)
  suffix_deep_mass : float;  (** solved stationary mass of [HN^{>=Δ}] *)
  suffix_max_abs_error : float;  (** max abs deviation from Eq. 37 *)
}
(** Solver health probe on the suffix chain [C_F] at this point's Δ:
    the stationary distribution via {!Nakamoto_markov.Chain.stationary_auto}
    (dense LU below the crossover, the sparse substrate above) checked
    against the closed form. *)

type t = {
  params : Params.t;
  zone : zone;
  neat_threshold : float;  (** [2 mu / ln (mu/nu)] *)
  neat_margin : float;  (** [c - neat_threshold] (positive = safe side) *)
  theorem1_log_margin : float;  (** log-domain slack of Ineq. 10 *)
  theorem2_exact_threshold : float;
      (** the eps1-optimized finite-Delta threshold of Ineq. 11 *)
  pss_threshold : float;
      (** minimum c under the closed-form PSS consistency bound
          ([2 (1-nu)^2 / (1-2nu)]), or [infinity] for [nu >= 1/2] *)
  attack_threshold : float;  (** the PSS attack succeeds for c below this *)
  confirmations : Confirmation.assessment option;
      (** settlement depth at the default risk target; [None] when
          [nu = 0] or the point is outside the consistency region *)
  confirmation_failure : Confirmation.unavailable option;
      (** why [confirmations] is [None], when it is *)
  growth_bounds : float * float;  (** (pessimistic, optimistic) per round *)
  quality_bound : float;  (** delta-adjusted chain-quality floor *)
  suffix_diagnostics : suffix_diagnostics option;
      (** [None] when Δ is not a small integer ([1 <= Δ <= 4096]) — the
          chain is only enumerable for integer Δ, and Internet-scale
          points (Δ ≈ 10^13) must not pay a per-assessment solve *)
}

val assess : Params.t -> t
(** [assess params] computes the verdict.  Never raises for valid
    {!Params.t} values (the confirmation sub-assessment degrades to
    [None] instead). *)

val zone_to_string : zone -> string

val pp : Format.formatter -> t -> unit
(** Multi-line human rendering. *)

type verdict = {
  v_params : Params.t;
  v_zone : zone;
  v_margin : float;  (** neat margin, point estimate *)
  v_margin_lo : float;
  v_margin_hi : float;
      (** certified enclosure of the margin; degenerate (equal to
          [v_margin]) when the answer came from the exact solver *)
  v_confirmations : int option;
  v_conf_reason : string option;
      (** {!Confirmation.unavailable_label} tag when confirmations are
          [None] *)
  v_cached : bool;  (** answered from a precomputed surface *)
  v_fallback : string option;
      (** when a surface query fell back to the exact solver, why:
          ["outside_box"] | ["zone_boundary"] | ["conf_boundary"] *)
}
(** The compact query-serving answer: what a cached surface can return
    in common with the exact solver.  [Nakamoto_surface.Table] answers
    these from its cells; {!verdict_of} projects a full exact
    {!t} onto one (with [v_cached = false]). *)

val verdict_of : t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit

val to_table : t list -> Nakamoto_numerics.Table.t
(** One row per assessed point. *)
