(** Lemmas 2–8 and Propositions 1–2 as executable inequality checks.

    The proof of Theorem 3 is the implication chain (52)–(59): Ineq. (51)
    implies, step by step through seven lemmas, Theorem 1's Ineq. (10).
    Each lemma here exposes the numeric quantities on both sides of its
    inequality so the chain can be audited at any parameter point; the
    property-test suite samples parameters satisfying the preconditions
    and asserts every link.  Throughout, [l] abbreviates [ln (mu/nu)] and
    all fragile powers are evaluated in the log domain. *)

val delta4_default : eps1:float -> eps2:float -> l:float -> float
(** Eq. (60): [(eps1+eps2) l / (eps1 + eps2 + (1-eps1)(l+1))].
    @raise Invalid_argument unless [0 < eps1 < 1], [eps2 > 0], [l > 0]. *)

val delta1_of : delta4:float -> eps1:float -> l:float -> float
(** Eq. (61): [(1+delta4)(1 - eps1 l / (l+1)) - 1]. *)

val pn_condition_holds : eps1:float -> Params.t -> bool
(** Ineq. (50): [p n <= eps1 l / ((l+1) mu)].
    @raise Invalid_argument unless [0 < eps1 < 1] and [nu > 0]. *)

val lemma2_premise : delta1:float -> Params.t -> bool
(** Ineq. (66): [abar >= ((1+delta1)/(1-p mu n) * nu/mu)^(1/(2 delta))]
    (log domain).  Requires Eq. (65): [0 < p mu n < 1]; returns [false]
    if that precondition fails. *)

val lemma2_conclusion : delta1:float -> Params.t -> bool
(** Ineq. (10): [abar^(2 delta) alpha1 >= (1+delta1) p nu n]. *)

val lemma3_conclusion : delta1:float -> delta4:float -> Params.t -> bool
(** Ineq. (70): [((1+delta1)/(1-p mu n))^(1/(2 delta)) <= 1 + delta4/(2 delta)]. *)

val lemma4_c_bound : delta4:float -> Params.t -> float
(** RHS of Ineq. (74):
    [1 / (n delta (1 - ((1+delta4/(2delta)) (nu/mu)^(1/(2delta)))^(1/(mu n))))].
    @raise Invalid_argument unless [0 < delta4 < l] (Ineq. 73). *)

val lemma4_conclusion : delta4:float -> Params.t -> bool
(** Ineq. (71): [abar >= (1 + delta4/(2 delta)) * (nu/mu)^(1/(2 delta))]. *)

val proposition2_holds : delta4:float -> Params.t -> bool
(** [1 - (1 + delta4/(2delta)) (nu/mu)^(1/(2delta)) > 0], valid whenever
    [0 < delta4 < l]. *)

val lemma5_c_bound : delta4:float -> Params.t -> float
(** RHS of Ineq. (77): [mu / (delta (1 - (1+delta4/(2delta)) (nu/mu)^(1/(2delta))))].
    @raise Invalid_argument unless [0 < delta4 < l]. *)

val lemma6_c_bound : delta4:float -> Params.t -> float
(** RHS of Ineq. (80):
    [mu / (delta (1 - (nu/mu)^(1/(2delta)))) * (1 + delta4/(l - delta4))].
    @raise Invalid_argument unless [0 < delta4 < l]. *)

val lemma7_middle : Params.t -> float
(** The middle term of Ineq. (82): [1 / (delta (1 - (nu/mu)^(1/(2delta))))].
    Lemma 7 sandwiches it in [[2/l, 2/l + 1/delta]]. *)

val lemma7_holds : Params.t -> bool
(** Both inequalities of (82). *)

val lemma8_holds : eps1:float -> eps2:float -> Params.t -> bool
(** Ineq. (85): with [delta4] from Eq. (60),
    [1 + delta4/(l - delta4) < (1+eps2)/(1-eps1)]. *)

val lemma8_c_bound : delta4:float -> Params.t -> float
(** RHS of Ineq. (83): [(2mu/l + mu/delta) (1 + delta4/(l - delta4))]. *)

val log_min_stationary_fp : Params.t -> float
(** Proposition 1's expression for [log (min pi_{F||P})]:
    [log alpha + (delta-1) log abar + log (min (1-abar^delta) (abar^delta))
     + (delta+1) log (min (p mu n) abar)].
    @raise Invalid_argument when [p mu n = 0]. *)

val pi_norm_bound : Params.t -> float
(** Proposition 1's conclusion [||phi||_pi <= 1/sqrt(min pi)], i.e.
    [exp (-0.5 * log_min_stationary_fp p)].  May be [infinity] when the
    minimum underflows the log domain's exp. *)

type chain_step = {
  name : string;  (** e.g. "(58) Lemma 8" *)
  holds : bool;
  detail : string;  (** the two compared quantities, for diagnostics *)
}

type chain_report = {
  params : Params.t;
  eps1 : float;
  eps2 : float;
  delta4 : float;
  delta1 : float;
  steps : chain_step list;
  all_hold : bool;
}

val verify_chain : eps1:float -> eps2:float -> Params.t -> chain_report
(** [verify_chain ~eps1 ~eps2 p] audits the whole (52)–(59) derivation at
    parameter point [p]: it checks preconditions (50) and (51), derives
    [delta4]/[delta1] per Eqs. (60)–(61), and then checks every implication
    link — each "[c >= bound_k] is implied by [c >= bound_{k+1}]" as
    [bound_k <= bound_{k+1}], and each lemma's premise-to-conclusion hop
    directly.  [all_hold] must be [true] whenever (50) and (51) hold,
    which is exactly Theorem 3.
    @raise Invalid_argument unless [0 < eps1 < 1], [eps2 > 0], [nu > 0]. *)
