module Special = Nakamoto_numerics.Special

type t = { trials : int; p : float }

let create ~trials ~p =
  if trials < 0 then invalid_arg "Binomial.create: trials must be nonnegative";
  if not (Special.is_probability p) then
    invalid_arg "Binomial.create: p must be a probability";
  { trials; p }

let mean { trials; p } = float_of_int trials *. p
let variance { trials; p } = float_of_int trials *. p *. (1. -. p)

let log_pmf { trials; p } k =
  if k < 0 || k > trials then neg_infinity
  else if p = 0. then if k = 0 then 0. else neg_infinity
  else if p = 1. then if k = trials then 0. else neg_infinity
  else
    Special.log_binomial_coefficient trials k
    +. (float_of_int k *. log p)
    +. Special.log_pow1p ~base:(-.p) ~exponent:(float_of_int (trials - k))

let pmf d k = exp (log_pmf d k)

let cdf d k =
  if k < 0 then 0.
  else if k >= d.trials then 1.
  else begin
    let acc = ref 0. in
    for i = 0 to k do
      acc := !acc +. pmf d i
    done;
    Special.clamp ~lo:0. ~hi:1. !acc
  end

let survival d k =
  if k < 0 then 1.
  else if k >= d.trials then 0.
  else begin
    (* Sum the (typically tiny) upper tail directly rather than via
       1 - cdf, preserving relative accuracy. *)
    let acc = ref 0. in
    for i = d.trials downto k + 1 do
      acc := !acc +. pmf d i
    done;
    Special.clamp ~lo:0. ~hi:1. !acc
  end

let log_prob_zero { trials; p } =
  if p = 1. && trials > 0 then neg_infinity
  else Special.log_pow1p ~base:(-.p) ~exponent:(float_of_int trials)

let prob_zero d = exp (log_prob_zero d)
let prob_positive d = -.Special.expm1 (log_prob_zero d)

let log_prob_one { trials; p } =
  if trials = 0 || p = 0. then neg_infinity
  else if p = 1. then if trials = 1 then 0. else neg_infinity
  else
    log (p *. float_of_int trials)
    +. Special.log_pow1p ~base:(-.p) ~exponent:(float_of_int (trials - 1))

let prob_one d = exp (log_prob_one d)

(* Sequential inversion: walk the pmf from k = 0 using the recurrence
   pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/(1-p).  Expected work O(1 + np). *)
let sample_by_inversion rng d =
  let u = Rng.float rng in
  let ratio = d.p /. (1. -. d.p) in
  let rec walk k pk acc =
    if acc +. pk >= u || k >= d.trials then k
    else
      let pk' = pk *. ratio *. float_of_int (d.trials - k) /. float_of_int (k + 1) in
      walk (k + 1) pk' (acc +. pk)
  in
  walk 0 (prob_zero d) 0.

let sample_by_trials rng d =
  let count = ref 0 in
  for _ = 1 to d.trials do
    if Rng.bernoulli rng ~p:d.p then incr count
  done;
  !count

let sample rng d =
  if d.trials = 0 || d.p = 0. then 0
  else if d.p = 1. then d.trials
  else if mean d <= 64. || d.trials <= 256 then sample_by_inversion rng d
  else sample_by_trials rng d
