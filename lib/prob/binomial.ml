module Special = Nakamoto_numerics.Special

type t = { trials : int; p : float }

let create ~trials ~p =
  if trials < 0 then invalid_arg "Binomial.create: trials must be nonnegative";
  if not (Special.is_probability p) then
    invalid_arg "Binomial.create: p must be a probability";
  { trials; p }

let mean { trials; p } = float_of_int trials *. p
let variance { trials; p } = float_of_int trials *. p *. (1. -. p)

let log_pmf { trials; p } k =
  if k < 0 || k > trials then neg_infinity
  else if p = 0. then if k = 0 then 0. else neg_infinity
  else if p = 1. then if k = trials then 0. else neg_infinity
  else
    Special.log_binomial_coefficient trials k
    +. (float_of_int k *. log p)
    +. Special.log_pow1p ~base:(-.p) ~exponent:(float_of_int (trials - k))

let pmf d k = exp (log_pmf d k)

(* pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p): one log-gamma evaluation at
   an anchor, then O(1) per step.  The anchor is the mode (or the interval
   endpoint nearest it) so the walk starts at the largest term of the sum
   and every subsequent term shrinks — once a term underflows to 0 the
   rest of that direction's tail is 0 and the walk stops early. *)
let mode { trials; p } = min trials (int_of_float (float_of_int (trials + 1) *. p))

(* Sum pmf over [lo, hi] (assumed within [0, trials], lo <= hi). *)
let sum_pmf d ~lo ~hi =
  let ratio = d.p /. (1. -. d.p) in
  let up k pk = pk *. ratio *. float_of_int (d.trials - k) /. float_of_int (k + 1) in
  let down k pk = pk /. ratio *. float_of_int k /. float_of_int (d.trials - k + 1) in
  let anchor = max lo (min hi (mode d)) in
  let acc = ref (pmf d anchor) in
  (* descend anchor-1 .. lo *)
  let pk = ref !acc in
  (try
     for k = anchor downto lo + 1 do
       pk := down k !pk;
       if !pk = 0. then raise Exit;
       acc := !acc +. !pk
     done
   with Exit -> ());
  (* ascend anchor+1 .. hi *)
  pk := pmf d anchor;
  (try
     for k = anchor to hi - 1 do
       pk := up k !pk;
       if !pk = 0. then raise Exit;
       acc := !acc +. !pk
     done
   with Exit -> ());
  !acc

let cdf d k =
  if k < 0 then 0.
  else if k >= d.trials then 1.
  else if d.p = 0. then 1.
  else if d.p = 1. then 0. (* k < trials *)
  else Special.clamp ~lo:0. ~hi:1. (sum_pmf d ~lo:0 ~hi:k)

let survival d k =
  if k < 0 then 1.
  else if k >= d.trials then 0.
  else if d.p = 0. then 0.
  else if d.p = 1. then 1.
  else
    (* Sum the (typically tiny) upper tail directly rather than via
       1 - cdf, preserving relative accuracy. *)
    Special.clamp ~lo:0. ~hi:1. (sum_pmf d ~lo:(k + 1) ~hi:d.trials)

let log_prob_zero { trials; p } =
  if p = 1. && trials > 0 then neg_infinity
  else Special.log_pow1p ~base:(-.p) ~exponent:(float_of_int trials)

let prob_zero d = exp (log_prob_zero d)
let prob_positive d = -.Special.expm1 (log_prob_zero d)

let log_prob_one { trials; p } =
  if trials = 0 || p = 0. then neg_infinity
  else if p = 1. then if trials = 1 then 0. else neg_infinity
  else
    log (p *. float_of_int trials)
    +. Special.log_pow1p ~base:(-.p) ~exponent:(float_of_int (trials - 1))

let prob_one d = exp (log_prob_one d)

(* Sequential inversion (BINV): walk the pmf from k = 0 using the recurrence
   pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/(1-p).  Expected work O(1 + np). *)
let sample_by_inversion rng d =
  let u = Rng.float rng in
  let ratio = d.p /. (1. -. d.p) in
  let rec walk k pk acc =
    if acc +. pk >= u || k >= d.trials then k
    else
      let pk' = pk *. ratio *. float_of_int (d.trials - k) /. float_of_int (k + 1) in
      walk (k + 1) pk' (acc +. pk)
  in
  walk 0 (prob_zero d) 0.

(* BTPE (Kachitvichyanukul & Schmeiser 1988): exact accept/reject with a
   triangle/parallelogram/exponential-tail envelope around the scaled pmf
   and a squeeze that avoids most explicit pmf evaluations.  O(1) expected
   draws per sample, independent of trials.  Requires p <= 1/2 (callers
   reflect) and trials * p large enough that the mode m >= 1 (we route
   here only when the mean exceeds the inversion cutoff). *)
let sample_btpe rng d =
  let n = float_of_int d.trials in
  let r = d.p in
  let q = 1. -. r in
  let fm = (n *. r) +. r in
  let m = int_of_float fm in
  let nrq = n *. r *. q in
  let p1 = Float.of_int (int_of_float ((2.195 *. sqrt nrq) -. (4.6 *. q))) +. 0.5 in
  let xm = float_of_int m +. 0.5 in
  let xl = xm -. p1 in
  let xr = xm +. p1 in
  let c = 0.134 +. (20.5 /. (15.3 +. float_of_int m)) in
  let a = (fm -. xl) /. (fm -. (xl *. r)) in
  let laml = a *. (1. +. (a /. 2.)) in
  let a = (xr -. fm) /. (xr *. q) in
  let lamr = a *. (1. +. (a /. 2.)) in
  let p2 = p1 *. (1. +. (2. *. c)) in
  let p3 = p2 +. (c /. laml) in
  let p4 = p3 +. (c /. lamr) in
  (* Stirling-series correction used by the final acceptance test. *)
  let stirling x =
    let x2 = x *. x in
    (13680. -. ((462. -. ((132. -. ((99. -. (140. /. x2)) /. x2)) /. x2)) /. x2))
    /. x /. 166320.
  in
  let rec draw () =
    let u = Rng.float rng *. p4 in
    let v = Rng.float rng in
    if u <= p1 then
      (* Triangular central region: accept immediately. *)
      int_of_float (xm -. (p1 *. v) +. u)
    else begin
      let region =
        if u <= p2 then begin
          (* Parallelogram. *)
          let x = xl +. ((u -. p1) /. c) in
          let v = (v *. c) +. 1. -. (Float.abs (x -. xm) /. p1) in
          if v > 1. || v <= 0. then None else Some (int_of_float x, v)
        end
        else if u <= p3 then begin
          (* Left exponential tail ([Float.floor]: the argument can be
             negative, where truncation would round the wrong way). *)
          let y = int_of_float (Float.floor (xl +. (log v /. laml))) in
          if y < 0 then None else Some (y, v *. (u -. p2) *. laml)
        end
        else begin
          (* Right exponential tail. *)
          let y = int_of_float (xr -. (log v /. lamr)) in
          if y > d.trials then None else Some (y, v *. (u -. p3) *. lamr)
        end
      in
      match region with
      | None -> draw ()
      | Some (y, v) ->
        let k = abs (y - m) in
        if k <= 20 || float_of_int k >= (nrq /. 2.) -. 1. then begin
          (* Explicit ratio-walk evaluation of pmf(y)/pmf(m). *)
          let s = r /. q in
          let aa = s *. (n +. 1.) in
          let f = ref 1. in
          if m < y then
            for i = m + 1 to y do
              f := !f *. ((aa /. float_of_int i) -. s)
            done
          else if m > y then
            for i = y + 1 to m do
              f := !f /. ((aa /. float_of_int i) -. s)
            done;
          if v > !f then draw () else y
        end
        else begin
          (* Squeeze: log v against quadratic bounds on log(pmf(y)/pmf(m)). *)
          let kf = float_of_int k in
          let rho =
            kf /. nrq *. ((((kf *. ((kf /. 3.) +. 0.625)) +. (1. /. 6.)) /. nrq) +. 0.5)
          in
          let t = -.(kf *. kf) /. (2. *. nrq) in
          let lv = log v in
          if lv < t -. rho then y
          else if lv > t +. rho then draw ()
          else begin
            (* Full acceptance test via Stirling on log(pmf(y)/pmf(m)). *)
            let x1 = float_of_int (y + 1) in
            let f1 = float_of_int (m + 1) in
            let z = n +. 1. -. float_of_int m in
            let w = n -. float_of_int y +. 1. in
            let bound =
              (xm *. log (f1 /. x1))
              +. ((n -. float_of_int m +. 0.5) *. log (z /. w))
              +. (float_of_int (y - m) *. log (w *. r /. (x1 *. q)))
              +. stirling f1 +. stirling z +. stirling x1 +. stirling w
            in
            if lv > bound then draw () else y
          end
        end
    end
  in
  draw ()

let rec sample rng d =
  if d.trials = 0 || d.p = 0. then 0
  else if d.p = 1. then d.trials
  else if d.p > 0.5 then
    (* Reflect so the walk/envelope works on the small-probability side
       (and inversion cannot underflow its starting mass). *)
    d.trials - sample rng { trials = d.trials; p = 1. -. d.p }
  else if mean d <= 64. || d.trials <= 256 then sample_by_inversion rng d
  else sample_btpe rng d

(* Zero-truncated sampling, i.e. X | X >= 1.  The obvious rejection loop
   costs 1/P(X >= 1) expected draws — exactly the gap length the skip
   executor is trying not to pay — so when zeros dominate we instead run
   sequential inversion started at k = 1 over the truncated law; its
   expected work is O(1 + np / P(X >= 1)) = O(1) in the sparse regime.
   When P(X = 0) < 1/2 plain rejection needs < 2 draws on average and
   reuses the BTPE large-mean path. *)
let sample_positive rng d =
  if d.trials = 0 || d.p = 0. then
    invalid_arg "Binomial.sample_positive: distribution has no positive mass";
  if d.p = 1. then d.trials
  else
    let q0 = prob_zero d in
    if q0 < 0.5 then begin
      let rec draw () =
        let k = sample rng d in
        if k = 0 then draw () else k
      in
      draw ()
    end
    else begin
      let u = Rng.float rng *. prob_positive d in
      let ratio = d.p /. (1. -. d.p) in
      let rec walk k pk acc =
        if acc +. pk >= u || k >= d.trials then k
        else
          let pk' =
            pk *. ratio *. float_of_int (d.trials - k) /. float_of_int (k + 1)
          in
          walk (k + 1) pk' (acc +. pk)
      in
      walk 1 (prob_one d) 0.
    end
