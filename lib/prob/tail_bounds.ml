module Special = Nakamoto_numerics.Special

let relative_entropy_bernoulli ~q ~p =
  if not (Special.is_probability q && Special.is_probability p) then
    invalid_arg "Tail_bounds.relative_entropy_bernoulli: arguments must be probabilities";
  let term x y =
    if x = 0. then 0.
    else if y = 0. then infinity
    else x *. log (x /. y)
  in
  term q p +. term (1. -. q) (1. -. p)

let log_binomial_upper_tail (d : Binomial.t) ~delta =
  if delta < 0. then invalid_arg "Tail_bounds.binomial_upper_tail: delta < 0";
  let q = (1. +. delta) *. d.p in
  if q >= 1. then 0.
  else -.(float_of_int d.trials *. relative_entropy_bernoulli ~q ~p:d.p)

let binomial_upper_tail d ~delta = exp (log_binomial_upper_tail d ~delta)

let binomial_lower_tail (d : Binomial.t) ~delta =
  if delta < 0. || delta > 1. then
    invalid_arg "Tail_bounds.binomial_lower_tail: delta outside [0, 1]";
  let q = (1. -. delta) *. d.p in
  exp (-.(float_of_int d.trials *. relative_entropy_bernoulli ~q ~p:d.p))

let hoeffding_upper_tail ~trials ~mean_shift =
  if trials <= 0 then invalid_arg "Tail_bounds.hoeffding_upper_tail: trials <= 0";
  if mean_shift < 0. then
    invalid_arg "Tail_bounds.hoeffding_upper_tail: mean_shift < 0";
  exp (-2. *. float_of_int trials *. mean_shift *. mean_shift)

let markov_chain_lower_tail ~norm_phi_pi ~stationary_rate ~horizon ~mixing_time
    ~delta =
  if norm_phi_pi < 1. then
    invalid_arg "Tail_bounds.markov_chain_lower_tail: ||phi||_pi >= 1 required";
  if not (stationary_rate > 0. && stationary_rate <= 1.) then
    invalid_arg "Tail_bounds.markov_chain_lower_tail: stationary_rate outside (0, 1]";
  if horizon <= 0 then
    invalid_arg "Tail_bounds.markov_chain_lower_tail: horizon <= 0";
  if mixing_time <= 0. then
    invalid_arg "Tail_bounds.markov_chain_lower_tail: mixing_time <= 0";
  if delta < 0. || delta > 1. then
    invalid_arg "Tail_bounds.markov_chain_lower_tail: delta outside [0, 1]";
  let exponent =
    -.(delta *. delta *. float_of_int horizon *. stationary_rate)
    /. (72. *. mixing_time)
  in
  Float.min 1. (norm_phi_pi *. exp exponent)

let pi_norm_bound ~min_stationary =
  if not (min_stationary > 0. && min_stationary <= 1.) then
    invalid_arg "Tail_bounds.pi_norm_bound: min_stationary outside (0, 1]";
  1. /. sqrt min_stationary
