module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.count
  let mean t = if t.count = 0 then nan else t.mean
  let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min_value t = t.min_v
  let max_value t = t.max_v

  let confidence_interval_95 t =
    if t.count < 2 then
      invalid_arg "Stats.Summary.confidence_interval_95: needs >= 2 samples";
    let half = 1.96 *. stddev t /. sqrt (float_of_int t.count) in
    (mean t -. half, mean t +. half)

  type raw = { n : int; mu : float; m2s : float; lo : float; hi : float }

  let raw t = { n = t.count; mu = t.mean; m2s = t.m2; lo = t.min_v; hi = t.max_v }

  let of_raw { n; mu; m2s; lo; hi } =
    if n < 0 then invalid_arg "Stats.Summary.of_raw: negative count";
    { count = n; mean = mu; m2 = m2s; min_v = lo; max_v = hi }

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let fa = float_of_int a.count and fb = float_of_int b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. fb /. float_of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
      {
        count = n;
        mean;
        m2;
        min_v = Float.min a.min_v b.min_v;
        max_v = Float.max a.max_v b.max_v;
      }
    end
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if not (lo < hi) then invalid_arg "Stats.Histogram.create: requires lo < hi";
    if bins <= 0 then invalid_arg "Stats.Histogram.create: bins must be positive";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let bin_of t x =
    let bins = Array.length t.counts in
    let raw =
      int_of_float (Float.of_int bins *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    max 0 (min (bins - 1) raw)

  let add t x =
    t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
    t.total <- t.total + 1

  let total t = t.total
  let counts t = Array.copy t.counts

  let fraction_at_most t x =
    if t.total = 0 then 0.
    else begin
      let bins = Array.length t.counts in
      let width = (t.hi -. t.lo) /. float_of_int bins in
      let acc = ref 0 in
      for i = 0 to bins - 1 do
        let upper = t.lo +. (width *. float_of_int (i + 1)) in
        if upper <= x then acc := !acc + t.counts.(i)
      done;
      float_of_int !acc /. float_of_int t.total
    end
end

let empirical_rate ~hits ~trials =
  if trials <= 0 then invalid_arg "Stats.empirical_rate: trials must be positive";
  if hits < 0 || hits > trials then
    invalid_arg "Stats.empirical_rate: hits outside [0, trials]";
  float_of_int hits /. float_of_int trials

module Special = Nakamoto_numerics.Special

type test = { statistic : float; df : float; p_value : float }

let chi_square_survival ~df x =
  if df <= 0 then invalid_arg "Stats.chi_square_survival: df must be positive";
  if x < 0. then invalid_arg "Stats.chi_square_survival: negative statistic";
  Special.regularized_gamma_upper ~a:(float_of_int df /. 2.) ~x:(x /. 2.)

(* Pool adjacent cells until every pooled cell's expected mass reaches
   [min_expected] — the classical validity condition for the chi-square
   approximation, and the reason these tests hold their nominal level on
   skewed distributions instead of flaking.  Returns pooled
   (observed, expected) pairs; a trailing underweight cell is merged
   backwards into its predecessor. *)
let pool_cells ~min_expected ~observed ~expected =
  let k = Array.length observed in
  let pooled = ref [] in
  let obs_acc = ref 0. and exp_acc = ref 0. in
  for i = 0 to k - 1 do
    obs_acc := !obs_acc +. observed.(i);
    exp_acc := !exp_acc +. expected.(i);
    if !exp_acc >= min_expected then begin
      pooled := (!obs_acc, !exp_acc) :: !pooled;
      obs_acc := 0.;
      exp_acc := 0.
    end
  done;
  (match (!pooled, !exp_acc > 0. || !obs_acc > 0.) with
  | (o, e) :: rest, true -> pooled := (o +. !obs_acc, e +. !exp_acc) :: rest
  | [], true -> pooled := [ (!obs_acc, !exp_acc) ]
  | _, false -> ());
  List.rev !pooled

let chi_square_gof ?(min_expected = 5.) ~observed ~expected () =
  let k = Array.length observed in
  if k = 0 || k <> Array.length expected then
    invalid_arg "Stats.chi_square_gof: length mismatch or empty";
  Array.iter
    (fun e ->
      if not (Float.is_finite e) || e < 0. then
        invalid_arg "Stats.chi_square_gof: expected counts must be >= 0")
    expected;
  let observed = Array.map float_of_int observed in
  let cells = pool_cells ~min_expected ~observed ~expected in
  let df = List.length cells - 1 in
  if df < 1 then { statistic = 0.; df = 0.; p_value = 1. }
  else begin
    let stat =
      List.fold_left
        (fun acc (o, e) ->
          if e = 0. then acc else acc +. ((o -. e) *. (o -. e) /. e))
        0. cells
    in
    {
      statistic = stat;
      df = float_of_int df;
      p_value = chi_square_survival ~df stat;
    }
  end

let chi_square_homogeneity ?(min_expected = 5.) a b () =
  let k = Array.length a in
  if k = 0 || k <> Array.length b then
    invalid_arg "Stats.chi_square_homogeneity: length mismatch or empty";
  Array.iter
    (fun x -> if x < 0 then invalid_arg "Stats.chi_square_homogeneity: negative count")
    a;
  Array.iter
    (fun x -> if x < 0 then invalid_arg "Stats.chi_square_homogeneity: negative count")
    b;
  let ta = float_of_int (Array.fold_left ( + ) 0 a) in
  let tb = float_of_int (Array.fold_left ( + ) 0 b) in
  if ta = 0. || tb = 0. then
    invalid_arg "Stats.chi_square_homogeneity: a sample is empty";
  (* 2 x k contingency test; expected cell mass under homogeneity is the
     column total split by row totals.  Pool columns (jointly, preserving
     alignment) until the smaller row's expected mass reaches
     [min_expected]. *)
  let total = ta +. tb in
  let pooled = ref [] in
  let acc_a = ref 0. and acc_b = ref 0. in
  for i = 0 to k - 1 do
    acc_a := !acc_a +. float_of_int a.(i);
    acc_b := !acc_b +. float_of_int b.(i);
    let col = !acc_a +. !acc_b in
    let min_row_expected = col *. Float.min ta tb /. total in
    if min_row_expected >= min_expected then begin
      pooled := (!acc_a, !acc_b) :: !pooled;
      acc_a := 0.;
      acc_b := 0.
    end
  done;
  (match (!pooled, !acc_a +. !acc_b > 0.) with
  | (pa, pb) :: rest, true -> pooled := (pa +. !acc_a, pb +. !acc_b) :: rest
  | [], true -> pooled := [ (!acc_a, !acc_b) ]
  | _, false -> ());
  let cells = List.rev !pooled in
  let df = List.length cells - 1 in
  if df < 1 then { statistic = 0.; df = 0.; p_value = 1. }
  else begin
    let stat =
      List.fold_left
        (fun acc (oa, ob) ->
          let col = oa +. ob in
          let ea = col *. ta /. total and eb = col *. tb /. total in
          acc
          +. ((oa -. ea) *. (oa -. ea) /. ea)
          +. ((ob -. eb) *. (ob -. eb) /. eb))
        0. cells
    in
    {
      statistic = stat;
      df = float_of_int df;
      p_value = chi_square_survival ~df stat;
    }
  end

(* Asymptotic Kolmogorov survival Q_KS(lambda) = 2 sum (-1)^{j-1}
   exp(-2 j^2 lambda^2); the alternating series converges in a handful of
   terms for any lambda of interest. *)
let kolmogorov_survival lambda =
  if lambda <= 0. then 1.
  else begin
    let acc = ref 0. and sign = ref 1. in
    (try
       for j = 1 to 100 do
         let term = !sign *. exp (-2. *. float_of_int (j * j) *. lambda *. lambda) in
         acc := !acc +. term;
         sign := -. !sign;
         if Float.abs term < 1e-18 then raise Exit
       done
     with Exit -> ());
    Special.clamp ~lo:0. ~hi:1. (2. *. !acc)
  end

let ks_two_sample a b =
  let n1 = Array.length a and n2 = Array.length b in
  if n1 = 0 || n2 = 0 then invalid_arg "Stats.ks_two_sample: empty sample";
  let a = Array.copy a and b = Array.copy b in
  Array.sort compare a;
  Array.sort compare b;
  let d = ref 0. in
  let i = ref 0 and j = ref 0 in
  let f1 = float_of_int n1 and f2 = float_of_int n2 in
  while !i < n1 && !j < n2 do
    let x1 = a.(!i) and x2 = b.(!j) in
    if x1 <= x2 then incr i;
    if x2 <= x1 then incr j;
    let diff = Float.abs ((float_of_int !i /. f1) -. (float_of_int !j /. f2)) in
    if diff > !d then d := diff
  done;
  let ne = f1 *. f2 /. (f1 +. f2) in
  let sqrt_ne = sqrt ne in
  let lambda = (sqrt_ne +. 0.12 +. (0.11 /. sqrt_ne)) *. !d in
  { statistic = !d; df = ne; p_value = kolmogorov_survival lambda }

let binomial_test ~hits ~trials ~p =
  if trials <= 0 then invalid_arg "Stats.binomial_test: trials must be positive";
  if hits < 0 || hits > trials then
    invalid_arg "Stats.binomial_test: hits outside [0, trials]";
  if not (Float.is_finite p) || p < 0. || p > 1. then
    invalid_arg "Stats.binomial_test: p must be a probability";
  let d = Binomial.create ~trials ~p in
  (* Exact two-sided p-value by doubling the smaller tail (conservative,
     and free of any normal approximation): both tails computed directly
     by the mode-anchored summation, so tiny p-values keep relative
     accuracy. *)
  let lower = Binomial.cdf d hits in
  let upper = Binomial.survival d (hits - 1) in
  Float.min 1. (2. *. Float.min lower upper)

let bonferroni ~family_size ~alpha =
  if family_size <= 0 then
    invalid_arg "Stats.bonferroni: family_size must be positive";
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Stats.bonferroni: alpha outside (0, 1)";
  alpha /. float_of_int family_size

let wilson_interval ~hits ~trials =
  let p_hat = empirical_rate ~hits ~trials in
  let z = 1.96 in
  let n = float_of_int trials in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let center = (p_hat +. (z2 /. (2. *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p_hat *. (1. -. p_hat) /. n) +. (z2 /. (4. *. n *. n)))
  in
  (Float.max 0. (center -. half), Float.min 1. (center +. half))
