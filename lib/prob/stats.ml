module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.count
  let mean t = if t.count = 0 then nan else t.mean
  let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min_value t = t.min_v
  let max_value t = t.max_v

  let confidence_interval_95 t =
    if t.count < 2 then
      invalid_arg "Stats.Summary.confidence_interval_95: needs >= 2 samples";
    let half = 1.96 *. stddev t /. sqrt (float_of_int t.count) in
    (mean t -. half, mean t +. half)

  type raw = { n : int; mu : float; m2s : float; lo : float; hi : float }

  let raw t = { n = t.count; mu = t.mean; m2s = t.m2; lo = t.min_v; hi = t.max_v }

  let of_raw { n; mu; m2s; lo; hi } =
    if n < 0 then invalid_arg "Stats.Summary.of_raw: negative count";
    { count = n; mean = mu; m2 = m2s; min_v = lo; max_v = hi }

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let fa = float_of_int a.count and fb = float_of_int b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. fb /. float_of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
      {
        count = n;
        mean;
        m2;
        min_v = Float.min a.min_v b.min_v;
        max_v = Float.max a.max_v b.max_v;
      }
    end
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if not (lo < hi) then invalid_arg "Stats.Histogram.create: requires lo < hi";
    if bins <= 0 then invalid_arg "Stats.Histogram.create: bins must be positive";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let bin_of t x =
    let bins = Array.length t.counts in
    let raw =
      int_of_float (Float.of_int bins *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    max 0 (min (bins - 1) raw)

  let add t x =
    t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
    t.total <- t.total + 1

  let total t = t.total
  let counts t = Array.copy t.counts

  let fraction_at_most t x =
    if t.total = 0 then 0.
    else begin
      let bins = Array.length t.counts in
      let width = (t.hi -. t.lo) /. float_of_int bins in
      let acc = ref 0 in
      for i = 0 to bins - 1 do
        let upper = t.lo +. (width *. float_of_int (i + 1)) in
        if upper <= x then acc := !acc + t.counts.(i)
      done;
      float_of_int !acc /. float_of_int t.total
    end
end

let empirical_rate ~hits ~trials =
  if trials <= 0 then invalid_arg "Stats.empirical_rate: trials must be positive";
  if hits < 0 || hits > trials then
    invalid_arg "Stats.empirical_rate: hits outside [0, trials]";
  float_of_int hits /. float_of_int trials

let wilson_interval ~hits ~trials =
  let p_hat = empirical_rate ~hits ~trials in
  let z = 1.96 in
  let n = float_of_int trials in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let center = (p_hat +. (z2 /. (2. *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p_hat *. (1. -. p_hat) /. n) +. (z2 /. (4. *. n *. n)))
  in
  (Float.max 0. (center -. half), Float.min 1. (center +. half))
