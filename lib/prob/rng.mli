(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    xoshiro256** seeded via SplitMix64, the standard pairing recommended by
    the xoshiro authors; SplitMix64 is also exposed directly as the
    random-oracle hash finalizer used by {!Nakamoto_chain.Hash}. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator; any seed (including [0L]) is valid
    because SplitMix64 whitens it. *)

val split : t -> t
(** [split t] derives an independent generator stream from [t], advancing
    [t].  Used to give each miner its own stream so that per-miner draws do
    not depend on iteration order elsewhere. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val seed_of_path : seed:int64 -> int list -> int64
(** [seed_of_path ~seed path] hash-chains [seed] through the indices of
    [path] with SplitMix64.  Distinct paths (including prefixes of one
    another and permutations) yield decorrelated seeds; identical paths
    yield identical seeds.  The single audited entry point for deriving
    per-trial seeds from [(campaign_seed, cell_index, trial_index)].
    @raise Invalid_argument on a negative index. *)

val of_path : seed:int64 -> int list -> t
(** [of_path ~seed path] is [create ~seed:(seed_of_path ~seed path)]: an
    independent stream addressed by [path].  Because derivation depends
    only on the path, streams are reproducible no matter which domain or
    schedule runs them. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [[0, 1)], built from 53 high bits. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform on [[0, bound)], bias-free by rejection.
    @raise Invalid_argument if [bound <= 0]. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p].
    @raise Invalid_argument if [p] is not a probability. *)

val splitmix64 : int64 -> int64
(** [splitmix64 x] is the SplitMix64 finalizer of [x]: a high-quality
    64-bit mixing permutation.  Exposed for hashing. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] uniformly in place (Fisher–Yates). *)
