(** Large-deviation bounds used in the paper's concentration arguments.

    Section V-B bounds the shortfall of the convergence-opportunity count
    [C] with the Chernoff–Hoeffding bound for Markov chains of Chung, Lam,
    Liu and Mitzenmacher (Ineq. 47); Section V-C bounds the overshoot of
    the adversary's block count [A] with the Arratia–Gordon binomial tail
    (Ineq. 49) via the relative entropy of Eq. (48).  Both bounds are
    implemented as computable functions so the bench harness can compare
    them with Monte-Carlo tail frequencies. *)

val relative_entropy_bernoulli : q:float -> p:float -> float
(** [relative_entropy_bernoulli ~q ~p] is
    [D(q || p) = q ln (q/p) + (1-q) ln ((1-q)/(1-p))], the KL divergence
    between Bernoulli(q) and Bernoulli(p), in nats.  Zero-probability
    conventions: [0 ln 0 = 0].  Infinite when the supports disagree.
    @raise Invalid_argument unless both are probabilities. *)

val binomial_upper_tail : Binomial.t -> delta:float -> float
(** [binomial_upper_tail d ~delta] is the Arratia–Gordon bound (Ineq. 49):
    [P(X >= (1+delta) * mean) <= exp (-trials * D((1+delta) p || p))].
    Returns the bound (in [[0, 1]]), or [1.] when [(1+delta) p >= 1].
    @raise Invalid_argument if [delta < 0.]. *)

val log_binomial_upper_tail : Binomial.t -> delta:float -> float
(** Log-domain version of {!binomial_upper_tail}. *)

val binomial_lower_tail : Binomial.t -> delta:float -> float
(** [binomial_lower_tail d ~delta] bounds
    [P(X <= (1-delta) * mean) <= exp (-trials * D((1-delta) p || p))].
    @raise Invalid_argument unless [0. <= delta && delta <= 1.]. *)

val hoeffding_upper_tail : trials:int -> mean_shift:float -> float
(** [hoeffding_upper_tail ~trials ~mean_shift] is the two-point Hoeffding
    bound [exp (-2 * trials * mean_shift^2)] for the probability that the
    empirical mean of [trials] [0,1]-valued variables exceeds its
    expectation by [mean_shift].
    @raise Invalid_argument if [trials <= 0] or [mean_shift < 0.]. *)

val markov_chain_lower_tail :
  norm_phi_pi:float -> stationary_rate:float -> horizon:int ->
  mixing_time:float -> delta:float -> float
(** [markov_chain_lower_tail ~norm_phi_pi ~stationary_rate ~horizon
    ~mixing_time ~delta] is the shape of Ineq. (47): the Chung et al. bound
    [c * ||phi||_pi * exp (- delta^2 * T * mu / (72 * tau))] on the
    probability that the occupancy of a state set with stationary mass
    [stationary_rate = mu] over [horizon = T] steps falls below
    [(1 - delta)] of its mean, where [tau] is the 1/8-mixing time.  The
    leading absolute constant [c] is taken as [1.] (the theorem guarantees
    some constant independent of the parameters; for comparison plots only
    the exponential rate matters).
    @raise Invalid_argument on out-of-range arguments. *)

val pi_norm_bound : min_stationary:float -> float
(** [pi_norm_bound ~min_stationary] is Proposition 1's bound
    [||phi||_pi <= 1 / sqrt min_stationary].
    @raise Invalid_argument unless [0. < min_stationary && min_stationary <= 1.]. *)
