(** The binomial distribution [binom(n, p)].

    Per round, the number of blocks mined by [m] miners each succeeding
    independently with probability [p] is binomial — both the honest side
    ([binom(mu*n, p)], Eqs. 7–9 of the paper) and the adversary
    ([binom(nu*n, p)], Eq. 27).  Everything here is exact (no normal
    approximation); log-domain variants cover the extreme parameter ranges
    of the paper's Figure 1. *)

type t = private { trials : int; p : float }

val create : trials:int -> p:float -> t
(** [create ~trials ~p] validates [trials >= 0] and [p] in [[0, 1]].
    @raise Invalid_argument otherwise. *)

val mean : t -> float
(** [mean d] is [trials *. p]. *)

val variance : t -> float
(** [variance d] is [trials *. p *. (1 -. p)]. *)

val log_pmf : t -> int -> float
(** [log_pmf d k] is [log P(X = k)]; [neg_infinity] outside [[0, trials]]. *)

val pmf : t -> int -> float
(** [pmf d k] is [P(X = k)]. *)

val cdf : t -> int -> float
(** [cdf d k] is [P(X <= k)] by summation (clamped to [[0, 1]]): one
    [log_pmf] evaluation at the mode, then the pmf ratio recurrence at
    O(1) per term, stopping early once a tail underflows. *)

val survival : t -> int -> float
(** [survival d k] is [P(X > k)], summed over the upper tail the same way
    (never via [1 - cdf], preserving relative accuracy when tiny). *)

val log_prob_zero : t -> float
(** [log_prob_zero d] is [log P(X = 0) = trials * log1p (-p)] — the paper's
    [log abar] when applied to the honest miners. *)

val prob_zero : t -> float
(** [prob_zero d] is [P(X = 0)] — the paper's [abar], Eq. (8). *)

val prob_positive : t -> float
(** [prob_positive d] is [P(X > 0) = 1 - prob_zero d] — the paper's
    [alpha], Eq. (7), computed as [-expm1 (log_prob_zero d)]. *)

val log_prob_one : t -> float
(** [log_prob_one d] is [log P(X = 1)] — the paper's [log alpha1],
    Eq. (9): [log (p * trials) + (trials - 1) * log1p (-p)]. *)

val prob_one : t -> float
(** [prob_one d] is [P(X = 1)] — the paper's [alpha1]. *)

val sample : Rng.t -> t -> int
(** [sample rng d] draws from the distribution in O(1) expected time for
    every parameter regime — it never walks the [trials] Bernoullis:

    - small mean (the simulator's regime, [mean <= 64] or
      [trials <= 256]): sequential inversion from [k = 0] (BINV), expected
      [O(1 + mean)] work, bit-compatible with every earlier release;
    - large mean: the exact BTPE accept/reject envelope of
      Kachitvichyanukul–Schmeiser (1988), O(1) expected draws independent
      of [trials];
    - [p > 1/2]: sampled as [trials - sample (trials, 1 - p)], so both
      paths always walk the small-probability side (this also fixes the
      old underflow of inversion's starting mass at [p] near 1).

    Every path is exact (no normal approximation). *)

val sample_positive : Rng.t -> t -> int
(** [sample_positive rng d] draws from the zero-truncated law
    [X | X >= 1] in O(1) expected time even when [P(X = 0)] is close to 1
    — the regime where naive rejection would cost [1 / P(X >= 1)] draws
    per sample.  When zeros dominate it runs sequential inversion from
    [k = 1] over the truncated masses; otherwise it rejection-samples on
    {!sample} (< 2 expected draws).  The skip executor uses this for the
    success count of a block-bearing round.
    @raise Invalid_argument if [trials = 0] or [p = 0] (no positive
    mass). *)
