type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Advance a SplitMix64 stream: state += golden gamma, output = finalize. *)
let splitmix_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  splitmix64 !state

let create ~seed =
  let st = ref seed in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = bits64 t in
  create ~seed

let seed_of_path ~seed path =
  (* Hash-chain the seed through the indices: each step finalizes
     (state + golden * (index+1)) with SplitMix64.  The +1 keeps index 0
     from being a no-op, and the multiply keeps [1;0] and [0;1] apart. *)
  List.fold_left
    (fun acc i ->
      if i < 0 then invalid_arg "Rng.seed_of_path: negative index";
      splitmix64
        (Int64.add acc (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (i + 1)))))
    (splitmix64 seed) path

let of_path ~seed path = create ~seed:(seed_of_path ~seed path)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound = 1 then 0
  else begin
    (* Rejection sampling on the top bits to avoid modulo bias. *)
    let b = Int64.of_int bound in
    let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int b) in
    let rec draw () =
      let r = Int64.shift_right_logical (bits64 t) 1 in
      if r >= limit then draw () else Int64.to_int (Int64.rem r b)
    in
    draw ()
  end

let bernoulli t ~p =
  if not (Nakamoto_numerics.Special.is_probability p) then
    invalid_arg "Rng.bernoulli: p must be a probability";
  float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
