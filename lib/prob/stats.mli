(** Streaming summary statistics and empirical distributions.

    Monte-Carlo validation runs stream millions of observations; Welford's
    online algorithm keeps mean and variance exactly without storing the
    sample.  Histograms support the concentration experiments (empirical
    tail frequency vs analytic bound). *)

module Summary : sig
  type t
  (** Mutable running summary: count, mean, min, max, variance. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [mean t] is [nan] on an empty summary. *)

  val variance : t -> float
  (** Unbiased (n-1) sample variance; [nan] with fewer than two samples. *)

  val stddev : t -> float
  val min_value : t -> float
  val max_value : t -> float

  val confidence_interval_95 : t -> float * float
  (** [confidence_interval_95 t] is a normal-approximation 95% CI
      [(lo, hi)] for the mean: [mean ± 1.96 * stddev / sqrt count].
      @raise Invalid_argument with fewer than two samples. *)

  val merge : t -> t -> t
  (** [merge a b] combines two summaries as if all observations had been
      added to one (parallel Welford merge); inputs are unchanged. *)

  type raw = { n : int; mu : float; m2s : float; lo : float; hi : float }
  (** The exact internal state: count, running mean, sum of squared
      deviations, min, max. *)

  val raw : t -> raw
  (** [raw t] exposes the internal state for exact serialization (the
      campaign journal persists summaries across interrupted runs). *)

  val of_raw : raw -> t
  (** [of_raw r] rebuilds a summary from {!raw} output, bit-identically.
      @raise Invalid_argument on a negative count. *)
end

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** Uniform-width histogram on [[lo, hi]); out-of-range observations are
      counted in saturating edge bins.
      @raise Invalid_argument unless [lo < hi] and [bins > 0]. *)

  val add : t -> float -> unit
  val total : t -> int
  val counts : t -> int array
  (** [counts t] is a copy of the per-bin counts. *)

  val fraction_at_most : t -> float -> float
  (** [fraction_at_most t x] is the empirical fraction of observations in
      bins entirely at or below [x] — a CDF lower estimate. *)
end

(** {1 Hypothesis tests}

    The assertions behind the property-test statistical kit
    ({!Nakamoto_proptest.Stat}): each returns an exact or asymptotic
    p-value so callers can apply a Bonferroni-corrected threshold and
    keep CI deterministic at a fixed seed. *)

type test = {
  statistic : float;  (** the test statistic (chi-square value, KS D, ...) *)
  df : float;  (** degrees of freedom, or the KS effective sample size *)
  p_value : float;
}

val chi_square_survival : df:int -> float -> float
(** [chi_square_survival ~df x] is [P(Chi2_df > x)] via the regularized
    upper incomplete gamma function.
    @raise Invalid_argument if [df <= 0] or [x < 0.]. *)

val chi_square_gof :
  ?min_expected:float -> observed:int array -> expected:float array -> unit -> test
(** [chi_square_gof ~observed ~expected ()] is Pearson's goodness-of-fit
    test of the counts against the (same-length, same-total) expected
    masses.  Adjacent cells are pooled until each pooled cell carries at
    least [min_expected] (default 5) expected observations — the classical
    validity condition — and [df] is pooled cells minus one.  A family
    that pools to a single cell returns [p_value = 1.].
    @raise Invalid_argument on length mismatch, empty input, or a
    negative/non-finite expected entry. *)

val chi_square_homogeneity :
  ?min_expected:float -> int array -> int array -> unit -> test
(** [chi_square_homogeneity a b ()] tests whether two count vectors over
    the same cells were drawn from one distribution (2 x k contingency
    test).  Columns are pooled jointly until the smaller sample's expected
    cell mass reaches [min_expected]; [df] is pooled columns minus one.
    @raise Invalid_argument on length mismatch, negative counts, or an
    all-zero sample. *)

val ks_two_sample : float array -> float array -> test
(** [ks_two_sample a b] is the two-sample Kolmogorov-Smirnov test:
    [statistic] is the sup-distance between the empirical CDFs, [df] the
    effective sample size [n1 n2 / (n1 + n2)], and [p_value] the
    asymptotic Kolmogorov survival with the Stephens small-sample
    correction.
    @raise Invalid_argument on an empty sample. *)

val binomial_test : hits:int -> trials:int -> p:float -> float
(** [binomial_test ~hits ~trials ~p] is the exact two-sided binomial-test
    p-value (double the smaller tail, capped at 1) of observing [hits]
    successes under success probability [p] — no normal approximation at
    any size.
    @raise Invalid_argument on out-of-range arguments. *)

val bonferroni : family_size:int -> alpha:float -> float
(** [bonferroni ~family_size ~alpha] is the per-test threshold
    [alpha / family_size] controlling the family-wise error rate of
    [family_size] simultaneous tests at level [alpha].
    @raise Invalid_argument if [family_size <= 0] or [alpha] outside
    (0, 1). *)

val empirical_rate : hits:int -> trials:int -> float
(** [empirical_rate ~hits ~trials] is [hits / trials] as a float.
    @raise Invalid_argument if [trials <= 0] or [hits] outside
    [[0, trials]]. *)

val wilson_interval : hits:int -> trials:int -> float * float
(** [wilson_interval ~hits ~trials] is the 95% Wilson score interval for a
    binomial proportion — well behaved even when [hits] is 0 or [trials].
    @raise Invalid_argument under the same conditions as
    {!empirical_rate}. *)
