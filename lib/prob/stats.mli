(** Streaming summary statistics and empirical distributions.

    Monte-Carlo validation runs stream millions of observations; Welford's
    online algorithm keeps mean and variance exactly without storing the
    sample.  Histograms support the concentration experiments (empirical
    tail frequency vs analytic bound). *)

module Summary : sig
  type t
  (** Mutable running summary: count, mean, min, max, variance. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [mean t] is [nan] on an empty summary. *)

  val variance : t -> float
  (** Unbiased (n-1) sample variance; [nan] with fewer than two samples. *)

  val stddev : t -> float
  val min_value : t -> float
  val max_value : t -> float

  val confidence_interval_95 : t -> float * float
  (** [confidence_interval_95 t] is a normal-approximation 95% CI
      [(lo, hi)] for the mean: [mean ± 1.96 * stddev / sqrt count].
      @raise Invalid_argument with fewer than two samples. *)

  val merge : t -> t -> t
  (** [merge a b] combines two summaries as if all observations had been
      added to one (parallel Welford merge); inputs are unchanged. *)

  type raw = { n : int; mu : float; m2s : float; lo : float; hi : float }
  (** The exact internal state: count, running mean, sum of squared
      deviations, min, max. *)

  val raw : t -> raw
  (** [raw t] exposes the internal state for exact serialization (the
      campaign journal persists summaries across interrupted runs). *)

  val of_raw : raw -> t
  (** [of_raw r] rebuilds a summary from {!raw} output, bit-identically.
      @raise Invalid_argument on a negative count. *)
end

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** Uniform-width histogram on [[lo, hi]); out-of-range observations are
      counted in saturating edge bins.
      @raise Invalid_argument unless [lo < hi] and [bins > 0]. *)

  val add : t -> float -> unit
  val total : t -> int
  val counts : t -> int array
  (** [counts t] is a copy of the per-bin counts. *)

  val fraction_at_most : t -> float -> float
  (** [fraction_at_most t x] is the empirical fraction of observations in
      bins entirely at or below [x] — a CDF lower estimate. *)
end

val empirical_rate : hits:int -> trials:int -> float
(** [empirical_rate ~hits ~trials] is [hits / trials] as a float.
    @raise Invalid_argument if [trials <= 0] or [hits] outside
    [[0, trials]]. *)

val wilson_interval : hits:int -> trials:int -> float * float
(** [wilson_interval ~hits ~trials] is the 95% Wilson score interval for a
    binomial proportion — well behaved even when [hits] is 0 or [trials].
    @raise Invalid_argument under the same conditions as
    {!empirical_rate}. *)
