(** Statistical assertions for properties over random processes.

    A distributional property cannot assert exact equality; it asserts
    that a test statistic is not absurd under the null.  Every check here
    produces an exact or asymptotic p-value ({!Nakamoto_prob.Stats}), and
    {!assert_family} applies a Bonferroni-corrected threshold across the
    family, sized (default [alpha = 1e-6]) so that at the committed seeds
    a correct implementation passes deterministically with orders of
    magnitude of margin — CI never retries — while a wrong distribution
    (p-values collapsing to ~1e-30) still fails instantly. *)

type check = {
  label : string;
  p_value : float;
  detail : string;  (** statistic rendering for failure reports *)
}

exception Rejected of string
(** Raised by {!assert_family} with every failing check's label,
    p-value, and statistic. *)

val default_alpha : float
(** [1e-6]. *)

val chi_square_gof :
  label:string -> observed:int array -> expected:float array -> check
(** Pearson goodness-of-fit of counts against expected masses (pooled per
    {!Nakamoto_prob.Stats.chi_square_gof}). *)

val homogeneity : label:string -> int array -> int array -> check
(** Two count vectors drawn from one distribution? *)

val ks : label:string -> float array -> float array -> check
(** Two-sample Kolmogorov-Smirnov. *)

val binomial : label:string -> hits:int -> trials:int -> p:float -> check
(** Exact two-sided binomial test. *)

val proportions :
  label:string -> hits_a:int -> trials_a:int -> hits_b:int -> trials_b:int ->
  check
(** Two empirical rates equal?  (2 x 2 homogeneity.) *)

val assert_family : ?alpha:float -> family:string -> check list -> unit
(** [assert_family ~family checks] rejects iff any check's p-value falls
    below [alpha / length checks].
    @raise Rejected listing the offending checks.
    @raise Invalid_argument on an empty family. *)
