module Rng = Nakamoto_prob.Rng
module Params = Nakamoto_core.Params
module Scenarios = Nakamoto_sim.Scenarios
module Config = Nakamoto_sim.Config
module Adversary = Nakamoto_sim.Adversary
module Network = Nakamoto_net.Network
module Block_tree = Nakamoto_chain.Block_tree

let params_print p = Format.asprintf "%a" Params.pp p

let params =
  Arbitrary.make ~print:params_print (fun rng ->
      let n = Gen.log_float_range ~lo:4. ~hi:1e6 rng in
      let delta = Gen.log_float_range ~lo:1. ~hi:1e4 rng in
      let nu = Gen.float_range ~lo:0.01 ~hi:0.49 rng in
      let c = Gen.log_float_range ~lo:0.3 ~hi:60. rng in
      Params.of_c ~n ~delta ~nu ~c)

let explicit_chain_point ~delta_max =
  if delta_max < 1 || delta_max > 6 then
    invalid_arg "Domain_gen.explicit_chain_point: delta_max outside [1, 6]";
  Arbitrary.make
    ~print:(fun (delta, p) ->
      Printf.sprintf "(delta=%d, %s)" delta (params_print p))
    ~shrink:(fun (delta, p) ->
      Seq.map
        (fun d ->
          ( d,
            Params.of_c ~n:p.Params.n ~delta:(float_of_int d) ~nu:p.Params.nu
              ~c:(Params.c p) ))
        (Seq.filter (fun d -> d >= 1) (Shrink.int ~target:1 delta)))
    (fun rng ->
      (* The explicit C_F||P construction is exponential in delta and its
         solvers want a mixing chain, so keep alpha moderate: with
         alpha ~ 1 - exp(-mu/c), c in [0.45, 8] and nu in [0.05, 0.45]
         pin alpha inside roughly [0.07, 0.88]. *)
      let delta = Gen.int_range ~lo:1 ~hi:delta_max rng in
      let n = Gen.log_float_range ~lo:8. ~hi:1e4 rng in
      let nu = Gen.float_range ~lo:0.05 ~hi:0.45 rng in
      let c = Gen.log_float_range ~lo:0.45 ~hi:8. rng in
      (delta, Params.of_c ~n ~delta:(float_of_int delta) ~nu ~c))

(* Strategy choice, parameterized by the honest count the spec implies so
   the balance boundary is always in range. *)
let strategy ~honest ~allow_balance rng =
  let private_chain rng =
    Adversary.Private_chain
      { reorg_target = Gen.int_range ~lo:2 ~hi:8 rng }
  in
  let balance rng =
    Adversary.Balance
      { group_boundary = Gen.int_range ~lo:1 ~hi:(max 1 (honest - 1)) rng }
  in
  Gen.frequency
    ([
       (3, Gen.return Adversary.Idle);
       (3, private_chain);
       (2, Gen.return Adversary.Selfish_mining);
     ]
    @ if allow_balance && honest >= 2 then [ (2, balance) ] else [])
    rng

let delay_override ~allow_recipient_dependent rng =
  Gen.frequency
    ([
       (4, Gen.return None);
       (1, Gen.return (Some Network.Immediate));
       (1, Gen.map (fun d -> Some (Network.Fixed d)) (Gen.int_range ~lo:1 ~hi:6));
       (1, Gen.return (Some Network.Maximal));
     ]
    @
    if allow_recipient_dependent then
      [ (1, Gen.return (Some Network.Uniform_random)) ]
    else [])
    rng

(* A spec is usable only if the whole executor surface accepts it:
   [of_spec] checks the numeric region, but strategy construction (a
   balance boundary must fit the honest count) and the aggregate
   executor's recipient-independence requirement (which extends to the
   strategy's *default* policy when no override is given) only surface at
   [Execution.run] time — validate them here so generation and shrinking
   never manufacture a configuration error out of a behavioral one. *)
let spec_valid s =
  match
    let cfg = Scenarios.of_spec s in
    let honest_count = Config.honest_count cfg in
    ignore (Adversary.create ~strategy:s.Scenarios.strategy ~honest_count);
    match cfg.Config.mining_mode with
    | Config.Exact -> ()
    | Config.Aggregate | Config.Skip -> (
      let policy =
        match cfg.Config.delay_override with
        | Some p -> p
        | None ->
          Adversary.delay_policy_for s.Scenarios.strategy
            ~delta:cfg.Config.delta ~honest_count
      in
      match policy with
      | Network.Immediate | Network.Fixed _ | Network.Maximal -> ()
      | Network.Uniform_random | Network.Per_recipient _ ->
        invalid_arg "aggregate/skip mining with a recipient-dependent policy")
  with
  | () -> true
  | exception Invalid_argument _ -> false
  | exception Config.Incompatible _ -> false

(* Record shrinking: simplify one dimension at a time (strategy to Idle,
   overrides off, numbers toward their floors), keeping only candidates
   that still form a valid configuration so a shrunk counterexample never
   mutates an executor failure into a validation error. *)
let shrink_spec (s : Scenarios.spec) =
  let open Scenarios in
  let strategies =
    match s.strategy with
    | Adversary.Idle -> Seq.empty
    | _ -> Seq.return { s with strategy = Adversary.Idle }
  in
  let delays =
    match s.delay with
    | None -> Seq.empty
    | Some Network.Immediate -> Seq.return { s with delay = None }
    | Some _ ->
      List.to_seq
        [ { s with delay = None }; { s with delay = Some Network.Immediate } ]
  in
  let ties =
    match s.tie_break with
    | Block_tree.Prefer_honest -> Seq.empty
    | Block_tree.First_seen ->
      Seq.return { s with tie_break = Block_tree.Prefer_honest }
  in
  let modes =
    match s.mining_mode with
    | Config.Exact -> Seq.empty
    | Config.Aggregate -> Seq.return { s with mining_mode = Config.Exact }
    | Config.Skip ->
      List.to_seq
        [
          { s with mining_mode = Config.Exact };
          { s with mining_mode = Config.Aggregate };
        ]
  in
  let nus = if s.nu > 0. then Seq.return { s with nu = 0.; strategy = Adversary.Idle } else Seq.empty in
  let numeric =
    List.to_seq
      [
        Seq.map (fun n -> { s with n }) (Shrink.int ~target:8 s.n);
        Seq.map (fun delta -> { s with delta }) (Shrink.int ~target:1 s.delta);
        Seq.map (fun rounds -> { s with rounds }) (Shrink.int ~target:200 s.rounds);
      ]
    |> Seq.concat
  in
  Seq.filter spec_valid
    (List.fold_right Seq.append
       [ strategies; nus; delays; ties; modes ]
       numeric)

let spec_gen ~dual_mode rng =
  let n = Gen.int_range ~lo:8 ~hi:64 rng in
  let nu =
    Gen.frequency
      [ (1, Gen.return 0.); (5, Gen.float_range ~lo:0.05 ~hi:0.45) ]
      rng
  in
  let honest = n - int_of_float (nu *. float_of_int n) in
  let strategy = strategy ~honest ~allow_balance:(not dual_mode) rng in
  let delay = delay_override ~allow_recipient_dependent:(not dual_mode) rng in
  let delta = Gen.int_range ~lo:1 ~hi:6 rng in
  let c = Gen.log_float_range ~lo:0.8 ~hi:8. rng in
  let rounds = Gen.int_range ~lo:200 ~hi:1200 rng in
  let tie_break =
    Gen.oneof_value [ Block_tree.Prefer_honest; Block_tree.First_seen ] rng
  in
  let mining_mode =
    if dual_mode then Config.Exact
    else Gen.oneof_value [ Config.Exact; Config.Aggregate; Config.Skip ] rng
  in
  let seed = Rng.bits64 rng in
  let s =
    {
      Scenarios.n;
      nu;
      c;
      delta;
      rounds;
      seed;
      strategy;
      delay;
      tie_break;
      mining_mode;
    }
  in
  (* Balance's cross-group policy and Uniform_random are queue-lane-only;
     when the roll paired them with the aggregate executor, fall back to
     the exact one rather than rejecting the trial. *)
  if spec_valid s then s else { s with mining_mode = Config.Exact }

let exec_spec =
  Arbitrary.make ~print:Scenarios.spec_to_string ~shrink:shrink_spec
    (spec_gen ~dual_mode:false)

let oracle_spec =
  Arbitrary.make ~print:Scenarios.spec_to_string ~shrink:shrink_spec
    (spec_gen ~dual_mode:true)
