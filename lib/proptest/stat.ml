module Stats = Nakamoto_prob.Stats

type check = { label : string; p_value : float; detail : string }

exception Rejected of string

let default_alpha = 1e-6

let chi_square_gof ~label ~observed ~expected =
  let t = Stats.chi_square_gof ~observed ~expected () in
  {
    label;
    p_value = t.Stats.p_value;
    detail =
      Printf.sprintf "chi2=%.3f df=%.0f" t.Stats.statistic t.Stats.df;
  }

let homogeneity ~label a b =
  let t = Stats.chi_square_homogeneity a b () in
  {
    label;
    p_value = t.Stats.p_value;
    detail =
      Printf.sprintf "chi2=%.3f df=%.0f" t.Stats.statistic t.Stats.df;
  }

let ks ~label a b =
  let t = Stats.ks_two_sample a b in
  {
    label;
    p_value = t.Stats.p_value;
    detail = Printf.sprintf "D=%.4f ne=%.1f" t.Stats.statistic t.Stats.df;
  }

let binomial ~label ~hits ~trials ~p =
  {
    label;
    p_value = Stats.binomial_test ~hits ~trials ~p;
    detail = Printf.sprintf "hits=%d trials=%d p0=%.6g" hits trials p;
  }

let proportions ~label ~hits_a ~trials_a ~hits_b ~trials_b =
  homogeneity ~label
    [| hits_a; trials_a - hits_a |]
    [| hits_b; trials_b - hits_b |]

let assert_family ?(alpha = default_alpha) ~family checks =
  if checks = [] then invalid_arg "Stat.assert_family: empty family";
  let threshold = Stats.bonferroni ~family_size:(List.length checks) ~alpha in
  let failures =
    List.filter (fun c -> not (c.p_value >= threshold)) checks
  in
  if failures <> [] then
    raise
      (Rejected
         (Printf.sprintf
            "statistical family '%s' rejected at alpha=%g \
             (per-test threshold %.3e, %d checks):\n%s"
            family alpha threshold (List.length checks)
            (String.concat "\n"
               (List.map
                  (fun c ->
                    Printf.sprintf "  %s: p=%.3e (%s)" c.label c.p_value
                      c.detail)
                  failures))))
