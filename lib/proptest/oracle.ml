module Rng = Nakamoto_prob.Rng
module Binomial = Nakamoto_prob.Binomial
module Params = Nakamoto_core.Params
module Conv_chain = Nakamoto_core.Conv_chain
module Suffix_chain = Nakamoto_core.Suffix_chain
module Chain = Nakamoto_markov.Chain
module Special = Nakamoto_numerics.Special
module Sim = Nakamoto_sim
module Config = Nakamoto_sim.Config
module Scenarios = Nakamoto_sim.Scenarios
module Execution = Nakamoto_sim.Execution
module State_process = Nakamoto_sim.State_process
module Metrics = Nakamoto_sim.Metrics

type lane = Exact_lane | Aggregate_lane | Skip_lane | State_lane

let lane_name = function
  | Exact_lane -> "exact"
  | Aggregate_lane -> "aggregate"
  | Skip_lane -> "skip"
  | State_lane -> "state-process"

type lane_stats = {
  lane : lane;
  rounds : int;
  honest_blocks : int;
  adversary_blocks : int;
  h_rounds : int;
  h1_rounds : int;
  convergence_opportunities : int;
  honest_mined_histogram : int array;  (** rounds with 0, 1, 2, 3, >= 4 *)
  growth_rate : float option;  (** [None] for the network-free state lane *)
}

type report = {
  spec : Scenarios.spec;
  exact : lane_stats;
  aggregate : lane_stats;
  skip : lane_stats;
  state : lane_stats;
  checks : Stat.check list;
}

let histogram_bins = 5

let histogram_add hist k =
  let bin = min (histogram_bins - 1) k in
  hist.(bin) <- hist.(bin) + 1

let stats_of_execution ~lane (cfg : Config.t) =
  let hist = Array.make histogram_bins 0 in
  let reported = ref 0 in
  let r =
    Execution.run
      ~on_round:(fun (rr : Execution.round_report) ->
        incr reported;
        histogram_add hist rr.honest_mined)
      cfg
  in
  (* Under [Skip], [on_round] fires only for simulated rounds; every
     unsimulated round was provably empty, so reconcile them into bin 0
     and the histogram is again over all [cfg.rounds] rounds.  For the
     other lanes [reported = cfg.rounds] and this is a no-op. *)
  hist.(0) <- hist.(0) + (cfg.rounds - !reported);
  {
    lane;
    rounds = cfg.rounds;
    honest_blocks = r.honest_blocks;
    adversary_blocks = r.adversary_blocks;
    h_rounds = r.h_rounds;
    h1_rounds = r.h1_rounds;
    convergence_opportunities = r.convergence_opportunities;
    honest_mined_histogram = hist;
    growth_rate = Some (Metrics.chain_growth r).growth_rate;
  }

let stats_of_state ~seed (cfg : Config.t) =
  let sp = Config.state_process_config cfg in
  let r =
    State_process.run ~rng:(Rng.of_path ~seed [ 3 ]) sp ~rounds:cfg.rounds
  in
  (* The histogram wants the raw per-round counts; draw an independent
     trajectory for it (both samples follow the same law). *)
  let trace =
    State_process.run_trace ~rng:(Rng.of_path ~seed [ 4 ]) sp
      ~rounds:cfg.rounds
  in
  let hist = Array.make histogram_bins 0 in
  Array.iter
    (fun s -> histogram_add hist (Sim.Round_state.block_count s))
    trace;
  {
    lane = State_lane;
    rounds = cfg.rounds;
    honest_blocks = r.State_process.honest_blocks;
    adversary_blocks = r.State_process.adversary_blocks;
    h_rounds = r.State_process.h_rounds;
    h1_rounds = r.State_process.h1_rounds;
    convergence_opportunities = r.State_process.convergence_opportunities;
    honest_mined_histogram = hist;
    growth_rate = None;
  }

(* Per-lane agreement with the analytic law: every counter below is an
   iid per-round (or per-query) sum whose law the paper gives in closed
   form, so the exact binomial test applies with no approximation.  Each
   lane checked against theory implies every pair of lanes agrees. *)
let law_checks (p : Params.t) (cfg : Config.t) s =
  let name fmt = Printf.sprintf fmt (lane_name s.lane) in
  let honest = Config.honest_count cfg in
  let adversarial = Config.adversary_count cfg in
  [
    Stat.binomial ~label:(name "%s h-rounds vs alpha") ~hits:s.h_rounds
      ~trials:s.rounds ~p:(Params.alpha p);
    Stat.binomial ~label:(name "%s h1-rounds vs alpha1") ~hits:s.h1_rounds
      ~trials:s.rounds ~p:(Params.alpha1 p);
    Stat.binomial
      ~label:(name "%s honest blocks vs binom(mu n T, p)")
      ~hits:s.honest_blocks
      ~trials:(honest * s.rounds)
      ~p:cfg.p;
  ]
  @
  if adversarial = 0 then []
  else
    [
      Stat.binomial
        ~label:(name "%s adversary blocks vs binom(nu n T, p)")
        ~hits:s.adversary_blocks
        ~trials:(adversarial * s.rounds)
        ~p:cfg.p;
    ]

let pairwise_checks a b =
  let pair fmt = Printf.sprintf fmt (lane_name a.lane) (lane_name b.lane) in
  [
    Stat.homogeneity
      ~label:(pair "%s vs %s honest-mined histogram")
      a.honest_mined_histogram b.honest_mined_histogram;
    Stat.proportions
      ~label:(pair "%s vs %s convergence-opportunity rate")
      ~hits_a:a.convergence_opportunities ~trials_a:a.rounds
      ~hits_b:b.convergence_opportunities ~trials_b:b.rounds;
  ]

(* Convergence opportunities are not independent across rounds, so no
   exact test exists; instead require each lane's count inside a generous
   envelope around the stationary expectation (Eq. 26).  The slack terms
   absorb boundary effects (the first window needs delta+1 warm-up
   rounds) while still catching any rate off by a constant factor. *)
let convergence_envelope_check (p : Params.t) s =
  let expected =
    Conv_chain.expected_convergence_count p ~horizon:s.rounds
  in
  let slack =
    (7. *. sqrt (expected +. 1.)) +. (2. *. p.Params.delta) +. 10.
  in
  let observed = float_of_int s.convergence_opportunities in
  if Float.abs (observed -. expected) > slack then
    failwith
      (Printf.sprintf
         "%s lane: %d convergence opportunities vs expected %.1f \
          (allowed slack %.1f)"
         (lane_name s.lane) s.convergence_opportunities expected slack)

let growth_check a b =
  match (a.growth_rate, b.growth_rate) with
  | Some ga, Some gb ->
    let ha = int_of_float (ga *. float_of_int a.rounds) in
    let hb = int_of_float (gb *. float_of_int b.rounds) in
    [
      Stat.proportions
        ~label:
          (Printf.sprintf "%s vs %s chain growth" (lane_name a.lane)
             (lane_name b.lane))
        ~hits_a:ha ~trials_a:a.rounds ~hits_b:hb ~trials_b:b.rounds;
    ]
  | _ -> []

let report (spec : Scenarios.spec) =
  let seed = spec.Scenarios.seed in
  let lane_seed i = Rng.seed_of_path ~seed [ i ] in
  let exact_cfg =
    Scenarios.of_spec
      { spec with Scenarios.mining_mode = Config.Exact; seed = lane_seed 1 }
  in
  let aggregate_cfg =
    Scenarios.of_spec
      { spec with Scenarios.mining_mode = Config.Aggregate; seed = lane_seed 2 }
  in
  (* The state lane consumes [Rng.of_path ~seed [3]] and [[4]]. *)
  let skip_cfg =
    Scenarios.of_spec
      { spec with Scenarios.mining_mode = Config.Skip; seed = lane_seed 5 }
  in
  let p = Params.of_sim_config exact_cfg in
  let exact = stats_of_execution ~lane:Exact_lane exact_cfg in
  let aggregate = stats_of_execution ~lane:Aggregate_lane aggregate_cfg in
  let skip = stats_of_execution ~lane:Skip_lane skip_cfg in
  let state = stats_of_state ~seed exact_cfg in
  let checks =
    List.concat
      [
        law_checks p exact_cfg exact;
        law_checks p aggregate_cfg aggregate;
        law_checks p skip_cfg skip;
        law_checks p exact_cfg state;
        pairwise_checks exact aggregate;
        pairwise_checks exact skip;
        pairwise_checks aggregate skip;
        pairwise_checks exact state;
        growth_check exact aggregate;
        growth_check exact skip;
      ]
  in
  { spec; exact; aggregate; skip; state; checks }

let check ?alpha spec =
  let r = report spec in
  let p = Params.of_sim_config (Scenarios.of_spec spec) in
  convergence_envelope_check p r.exact;
  convergence_envelope_check p r.aggregate;
  convergence_envelope_check p r.skip;
  convergence_envelope_check p r.state;
  Stat.assert_family ?alpha
    ~family:("differential oracle on " ^ Scenarios.spec_to_string spec)
    r.checks

(* ------------------------------------------------------------------ *)
(* Stationary-theory agreement: construction vs closed form vs solver. *)
(* ------------------------------------------------------------------ *)

let close ~label ~rtol a b =
  if not (Special.approx_equal ~rtol ~atol:1e-12 a b) then
    failwith
      (Printf.sprintf "%s: %.17g vs %.17g (rel diff %.3e)" label a b
         (Float.abs (a -. b) /. Float.max (Float.abs a) (Float.abs b)))

let suffix_stationary ~delta ~alpha =
  let chain = Suffix_chain.build ~delta ~alpha in
  let closed = Suffix_chain.stationary_closed_form ~delta ~alpha in
  let solved = Chain.stationary_linear_solve chain in
  let powered = Chain.stationary_power_iteration chain in
  for i = 0 to Array.length closed - 1 do
    let label which =
      Printf.sprintf "pi_F[%s] %s vs closed form (delta=%d alpha=%g)"
        (Suffix_chain.state_label (Suffix_chain.state_of_index ~delta i))
        which delta alpha
    in
    close ~label:(label "linear-solve") ~rtol:1e-8 solved.(i) closed.(i);
    close ~label:(label "power-iteration") ~rtol:1e-6 powered.(i) closed.(i)
  done

module Sparse = Nakamoto_markov.Sparse

let suffix_stationary_sparse ?(jobs = 2) ~delta ~alpha () =
  let sp = Suffix_chain.build_sparse ~delta ~alpha in
  let closed = Suffix_chain.stationary_closed_form ~delta ~alpha in
  (* The ladder structure keeps censoring at O(1) fill per state, so a
     fill-budget blowout here is itself a bug. *)
  let censored =
    match Sparse.stationary_censor sp with
    | Some pi -> pi
    | None ->
      failwith
        (Printf.sprintf
           "suffix chain delta=%d: censoring blew its fill budget on a \
            ladder chain"
           delta)
  in
  let powered = Sparse.stationary_power sp in
  let pooled =
    Sparse.Pool.with_pool ~jobs (fun pool -> Sparse.stationary_power ~pool sp)
  in
  for i = 0 to Array.length closed - 1 do
    let label which =
      Printf.sprintf "pi_F[%s] %s vs closed form (delta=%d alpha=%g)"
        (Suffix_chain.state_label (Suffix_chain.state_of_index ~delta i))
        which delta alpha
    in
    close ~label:(label "censor") ~rtol:1e-10 censored.(i) closed.(i);
    close ~label:(label "sparse-power") ~rtol:1e-6 powered.(i) closed.(i);
    if pooled.(i) <> powered.(i) then
      failwith
        (Printf.sprintf
           "%s: pooled power iteration is not bit-identical to sequential \
            (%.17g vs %.17g)"
           (label "pooled-power") pooled.(i) powered.(i))
  done

let conv_stationary_sparse ?jobs ~delta p =
  let cc = Conv_chain.stationary_cross_check_sparse ?jobs ~delta p in
  close ~label:"C_F||P Eq.44 vs Eq.40 (sparse path)" ~rtol:1e-8
    cc.Conv_chain.eq44 cc.Conv_chain.eq40;
  close ~label:"C_F||P Eq.44 vs sparse stationary" ~rtol:1e-7
    cc.Conv_chain.eq44 cc.Conv_chain.sparse_stationary;
  close ~label:"C_F||P Eq.44 vs sparse power" ~rtol:1e-5
    cc.Conv_chain.eq44 cc.Conv_chain.sparse_power

let conv_stationary ~delta p =
  let cc = Conv_chain.stationary_cross_check ~delta p in
  close ~label:"C_F||P closed form vs product form" ~rtol:1e-8
    cc.Conv_chain.closed_form cc.Conv_chain.product_form;
  close ~label:"C_F||P closed form vs linear solve" ~rtol:1e-7
    cc.Conv_chain.closed_form cc.Conv_chain.linear_solve;
  close ~label:"C_F||P closed form vs power iteration" ~rtol:1e-5
    cc.Conv_chain.closed_form cc.Conv_chain.power_iteration
