(** A generator packaged with its shrinker and printer — what a property
    runs against. *)

type 'a t = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  print : 'a -> string;
}

val make : ?shrink:'a Shrink.t -> ?print:('a -> string) -> 'a Gen.t -> 'a t
(** Defaults: no shrinking, ["<opaque>"] printing. *)

val gen : 'a t -> 'a Gen.t
val shrink : 'a t -> 'a Shrink.t
val print : 'a t -> 'a -> string

val int_range : ?shrink_target:int -> lo:int -> hi:int -> unit -> int t
(** Uniform ints, shrinking toward [shrink_target] (default: 0 when in
    range, else [lo]).
    @raise Invalid_argument if the target is outside [[lo, hi]]. *)

val float_range : lo:float -> hi:float -> float t
(** Uniform floats shrinking toward [lo], candidates kept inside the
    range. *)

val log_float_range : lo:float -> hi:float -> float t
(** Log-uniform floats shrinking toward [lo]. *)

val bool : bool t
(** Shrinks toward [false]. *)

val oneof_value : ?print:('a -> string) -> 'a list -> 'a t
(** Uniform choice among constants; shrinks toward the head of the list,
    so order alternatives simplest-first. *)

val list : max_len:int -> 'a t -> 'a list t
val pair : 'a t -> 'b t -> ('a * 'b) t

val map : ?shrink:'b Shrink.t -> ?print:('b -> string) -> ('a -> 'b) -> 'a t -> 'b t
(** Mapped values lose the source shrinker (no inverse is available);
    supply a ['b] shrinker when shrinking matters. *)
