(** The differential oracle: one generated scenario, every implementation.

    The repo carries four independent implementations of the same
    Δ-delay mining law (the full-network [Exact] executor, the
    [Aggregate] fast path, the round-skipping [Skip] fast path, and the
    network-free state process) and four
    independent derivations of the stationary convergence-opportunity
    probability (explicit chain by linear solve, by power iteration, the
    product formula Eq. 40, and the closed form Eq. 44).  The oracle runs
    them against each other on generated inputs:

    - each executor lane's iid counters (H-rounds, H1-rounds, honest and
      adversarial block totals) are tested against the paper's exact
      binomial laws — agreement with theory implies pairwise agreement;
    - per-round honest-block-count histograms and
      convergence-opportunity rates are compared pairwise
      (chi-square homogeneity / proportions; the [Skip] lane's skipped
      rounds are provably empty and are reconciled into the zero bin
      first);
    - Exact-vs-Aggregate and Exact-vs-Skip chain growth are compared
      (the state lane has no chains);
    - every lane's convergence-opportunity count must sit in a generous
      envelope around Eq. 26's expectation.

    All statistical checks go through one Bonferroni-corrected family
    ({!Stat.assert_family}), so a scenario either passes deterministically
    at its seed or names the offending lane and statistic. *)

type lane = Exact_lane | Aggregate_lane | Skip_lane | State_lane

type lane_stats = {
  lane : lane;
  rounds : int;
  honest_blocks : int;
  adversary_blocks : int;
  h_rounds : int;
  h1_rounds : int;
  convergence_opportunities : int;
  honest_mined_histogram : int array;  (** rounds mining 0, 1, 2, 3, >= 4 *)
  growth_rate : float option;  (** [None] for the network-free state lane *)
}

type report = {
  spec : Nakamoto_sim.Scenarios.spec;
  exact : lane_stats;
  aggregate : lane_stats;
  skip : lane_stats;
  state : lane_stats;
  checks : Stat.check list;
}

val report : Nakamoto_sim.Scenarios.spec -> report
(** [report spec] runs the four lanes (each under an independent seed
    derived from [spec.seed] by the audited path derivation) and collects
    every cross-check.  The spec's own [mining_mode] is ignored.
    @raise Invalid_argument if the spec cannot run in every lane (use
    {!Domain_gen.oracle_spec}). *)

val check : ?alpha:float -> Nakamoto_sim.Scenarios.spec -> unit
(** [check spec] asserts the whole report: envelope checks per lane, then
    the statistical family at [alpha] (default {!Stat.default_alpha}).
    @raise Failure on an envelope violation.
    @raise Stat.Rejected on a statistical disagreement. *)

val suffix_stationary : delta:int -> alpha:float -> unit
(** Asserts the suffix chain [C_F]'s closed-form stationary distribution
    (Eq. 37) against the explicit chain's linear solve and power
    iteration, state by state.
    @raise Failure naming the first disagreeing state. *)

val conv_stationary : delta:int -> Nakamoto_core.Params.t -> unit
(** Asserts the four derivations of the convergence-state stationary
    probability against each other ({!Nakamoto_core.Conv_chain.stationary_cross_check}).
    @raise Failure naming the disagreeing pair. *)

val suffix_stationary_sparse :
  ?jobs:int -> delta:int -> alpha:float -> unit -> unit
(** The large-Δ four-way: Eq. 37's closed form against GTH censoring,
    sequential sparse power iteration, and domain-pooled sparse power
    iteration (default [jobs = 2]) on the band-aware CSR chain — never
    materializing the dense matrix, so Δ in the thousands is testable.
    The pooled leg must agree with the sequential one {e bitwise}.
    @raise Failure naming the first disagreeing state (or the
    bit-identity break). *)

val conv_stationary_sparse :
  ?jobs:int -> delta:int -> Nakamoto_core.Params.t -> unit
(** {!conv_stationary} through the sparse substrate: Eqs. 44 and 40
    against {!Nakamoto_core.Conv_chain.stationary_cross_check_sparse}'s
    censoring (with power fallback) and power legs.
    @raise Failure naming the disagreeing pair. *)
