(** Generators over the paper's valid parameter region.

    Two spec distributions matter: {!exec_spec} ranges over everything a
    single executor accepts (including queue-lane-only features like the
    balance attack and [Uniform_random] delays), while {!oracle_spec} is
    restricted to scenarios every executor lane can run — the
    differential oracle's common ground.  Both shrink toward the smallest
    idle exact-mode configuration that still fails, and only through
    candidates that remain valid configurations. *)

val params : Nakamoto_core.Params.t Arbitrary.t
(** Analysis-side parameters across the full scales of the paper:
    [n] log-uniform on [4, 1e6], [delta] log-uniform on [1, 1e4],
    [nu] in [0.01, 0.49], [c] log-uniform on [0.3, 60]. *)

val explicit_chain_point : delta_max:int -> (int * Nakamoto_core.Params.t) Arbitrary.t
(** [(delta, params)] pairs suitable for the explicit [C_F]/[C_F||P]
    constructions: integer [delta <= delta_max] (also the params' network
    delay), and [c], [nu] ranges pinning the per-round H probability
    [alpha] into a solver-friendly band.  Shrinks [delta].
    @raise Invalid_argument unless [delta_max] lies in [1, 6]. *)

val exec_spec : Nakamoto_sim.Scenarios.spec Arbitrary.t
(** Any single-executor scenario: all strategies, all delay policies,
    both tie-breaks, both mining modes (falling back to [Exact] when the
    roll pairs aggregate mining with a queue-lane-only feature). *)

val oracle_spec : Nakamoto_sim.Scenarios.spec Arbitrary.t
(** Scenarios runnable by Exact, Aggregate, and the state process alike:
    recipient-independent delays, no balance attack.  The spec's
    [mining_mode] is fixed to [Exact]; the oracle overrides it per
    lane. *)
