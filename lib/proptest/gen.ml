module Rng = Nakamoto_prob.Rng

type 'a t = Rng.t -> 'a

let return x _ = x
let map f g rng = f (g rng)
let bind g f rng = f (g rng) rng
let pair a b rng =
  let x = a rng in
  let y = b rng in
  (x, y)

let triple a b c rng =
  let x = a rng in
  let y = b rng in
  let z = c rng in
  (x, y, z)

let bool rng = Rng.bernoulli rng ~p:0.5

let int_range ~lo ~hi rng =
  if lo > hi then invalid_arg "Gen.int_range: lo > hi";
  lo + Rng.int rng ~bound:(hi - lo + 1)

let float_range ~lo ~hi rng =
  if not (lo <= hi && Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Gen.float_range: requires finite lo <= hi";
  lo +. ((hi -. lo) *. Rng.float rng)

let log_float_range ~lo ~hi rng =
  if not (0. < lo && lo <= hi && Float.is_finite hi) then
    invalid_arg "Gen.log_float_range: requires 0 < lo <= hi";
  exp (float_range ~lo:(log lo) ~hi:(log hi) rng)

let oneof gens rng =
  match gens with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ -> List.nth gens (Rng.int rng ~bound:(List.length gens)) rng

let oneof_value xs rng =
  match xs with
  | [] -> invalid_arg "Gen.oneof_value: empty list"
  | _ -> List.nth xs (Rng.int rng ~bound:(List.length xs))

let frequency weighted rng =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: weights must sum to > 0";
  let roll = Rng.int rng ~bound:total in
  let rec pick acc = function
    | [] -> assert false
    | (w, g) :: rest -> if roll < acc + w then g rng else pick (acc + w) rest
  in
  pick 0 weighted

let list ~len elem rng =
  let n = len rng in
  if n < 0 then invalid_arg "Gen.list: negative length";
  List.init n (fun _ -> elem rng)

let array ~len elem rng =
  let n = len rng in
  if n < 0 then invalid_arg "Gen.array: negative length";
  Array.init n (fun _ -> elem rng)
