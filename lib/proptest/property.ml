module Rng = Nakamoto_prob.Rng

type failure = {
  name : string;
  seed : int64;
  path : int list;
  trials_run : int;
  shrink_steps : int;
  original_input : string;
  shrunk_input : string;
  error : string;
}

exception Failed of failure

let default_seed = 42L
let max_shrink_attempts = 1_000

let path_to_string path = String.concat "," (List.map string_of_int path)

let failure_message f =
  Printf.sprintf
    "property '%s' failed\n\
    \  seed=%Ld path=[%s] (trial %d of the run)\n\
    \  original input: %s\n\
    \  shrunk input (%d steps): %s\n\
    \  error: %s\n\
    \  replay: PROPTEST_SEED=%Ld PROPTEST_REPLAY=%s dune exec \
     test/prop/prop_main.exe -- test"
    f.name f.seed (path_to_string f.path) f.trials_run f.original_input
    f.shrink_steps f.shrunk_input f.error f.seed (path_to_string f.path)

let () =
  Printexc.register_printer (function
    | Failed f -> Some (failure_message f)
    | _ -> None)

(* The per-property stream seed folds the property name into the base
   seed, so two properties sharing a base seed and a trial index still
   draw decorrelated streams.  Replay only needs the base seed and the
   path: the name is re-folded identically on the replay run. *)
let property_seed ~seed ~name =
  let acc = ref (Rng.splitmix64 seed) in
  String.iter
    (fun ch -> acc := Rng.splitmix64 (Int64.add !acc (Int64.of_int (Char.code ch))))
    name;
  !acc

let env_seed () =
  match Sys.getenv_opt "PROPTEST_SEED" with
  | None | Some "" -> None
  | Some s -> (
    match Int64.of_string_opt s with
    | Some v -> Some v
    | None -> invalid_arg "PROPTEST_SEED: not an int64")

let env_trials () =
  match Sys.getenv_opt "PROPTEST_TRIALS" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt s with
    | Some v when v > 0 -> Some v
    | _ -> invalid_arg "PROPTEST_TRIALS: not a positive int")

let env_replay () =
  match Sys.getenv_opt "PROPTEST_REPLAY" with
  | None | Some "" -> None
  | Some s ->
    Some
      (List.map
         (fun part ->
           match int_of_string_opt (String.trim part) with
           | Some v when v >= 0 -> v
           | _ -> invalid_arg "PROPTEST_REPLAY: not a comma-separated int path")
         (String.split_on_char ',' s))

type 'a outcome = Pass | Fail of 'a * string

let error_to_string = function
  | Failure m -> m
  | Invalid_argument m -> "Invalid_argument: " ^ m
  | e -> Printexc.to_string e

let attempt prop x =
  match prop x with
  | () -> Pass
  | exception e -> Fail (x, error_to_string e)

(* Greedy shrinking: scan the candidate stream for the first value that
   still fails, restart from it, and stop when a whole stream passes or
   the attempt budget runs out.  Every candidate execution (pass or fail)
   costs one attempt, so adversarially wide streams cannot hang a test
   run. *)
let shrink_failure (arb : 'a Arbitrary.t) prop x0 err0 =
  let attempts = ref 0 in
  let steps = ref 0 in
  let cur = ref x0 and err = ref err0 in
  let improved = ref true in
  while !improved && !attempts < max_shrink_attempts do
    improved := false;
    (try
       Seq.iter
         (fun cand ->
           if !attempts >= max_shrink_attempts then raise Exit;
           incr attempts;
           match attempt prop cand with
           | Pass -> ()
           | Fail (x, e) ->
             cur := x;
             err := e;
             incr steps;
             improved := true;
             raise Exit)
         (arb.Arbitrary.shrink !cur)
     with Exit -> ())
  done;
  (!cur, !err, !steps)

let run_path ~seed ~name (arb : 'a Arbitrary.t) prop path =
  let rng = Rng.of_path ~seed:(property_seed ~seed ~name) path in
  attempt prop (arb.Arbitrary.gen rng)

let fail ~seed ~name ~path ~trials_run arb prop x err =
  let shrunk, shrunk_err, steps = shrink_failure arb prop x err in
  raise
    (Failed
       {
         name;
         seed;
         path;
         trials_run;
         shrink_steps = steps;
         original_input = Arbitrary.print arb x;
         shrunk_input = Arbitrary.print arb shrunk;
         error = shrunk_err;
       })

let check ?(count = 100) ?(seed = default_seed) ~name arb prop =
  if count <= 0 then invalid_arg "Property.check: count must be positive";
  let seed = Option.value (env_seed ()) ~default:seed in
  match env_replay () with
  | Some path -> (
    match run_path ~seed ~name arb prop path with
    | Pass -> ()
    | Fail (x, err) -> fail ~seed ~name ~path ~trials_run:1 arb prop x err)
  | None ->
    let count = Option.value (env_trials ()) ~default:count in
    for i = 0 to count - 1 do
      match run_path ~seed ~name arb prop [ i ] with
      | Pass -> ()
      | Fail (x, err) ->
        fail ~seed ~name ~path:[ i ] ~trials_run:(i + 1) arb prop x err
    done

let soak_active () = Option.is_some (env_trials ())
