(** Shrinking: lazy streams of strictly "smaller" candidate values.

    A shrinker maps a failing value to candidates to try in order; the
    runner's greedy loop keeps the first candidate that still fails and
    restarts from it, so streams should emit the most aggressive
    reductions first (all shrinkers here do).  Termination is guaranteed
    by the runner's step budget, not by the shrinker. *)

type 'a t = 'a -> 'a Seq.t

val nothing : 'a t
(** No candidates — for opaque or already-minimal values. *)

val int : ?target:int -> int t
(** Halve the distance to [target] (default 0), most aggressive first. *)

val float : ?target:float -> float t
(** A few waypoints toward [target] (default 0.). *)

val option : 'a t -> 'a option t
(** Try [None] first, then shrink the payload. *)

val list : 'a t -> 'a list t
(** Drop progressively smaller chunks, then shrink elements in place. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
(** Shrink each component while holding the other. *)
