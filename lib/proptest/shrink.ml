type 'a t = 'a -> 'a Seq.t

let nothing _ = Seq.empty

(* Candidates halving the distance to [target], nearest-to-target first:
   target itself, then midpoints, ending at the immediate neighbour of the
   failing value.  Works in either direction: the offset walks from 0
   toward [d] and the truncating division shrinks its magnitude each step,
   reaching [d] exactly (and stopping) from both sides. *)
let int ?(target = 0) x =
  if x = target then Seq.empty
  else
    let d = x - target in
    let rec go c () =
      if c = d then Seq.Nil else Seq.Cons (target + c, go (d - ((d - c) / 2)))
    in
    go 0

let float ?(target = 0.) x =
  if x = target || Float.is_nan x then Seq.empty
  else
    let deltas = [ 1.; 0.5; 0.25; 0.125 ] in
    List.to_seq
      (List.filter
         (fun c -> c <> x && Float.is_finite c)
         (target
         :: List.map (fun f -> x -. ((x -. target) *. f)) deltas))

let option shrink_x = function
  | None -> Seq.empty
  | Some x ->
    Seq.cons None (Seq.map (fun x' -> Some x') (shrink_x x))

(* Standard list shrinking: drop progressively smaller chunks, then
   shrink single elements in place. *)
let list shrink_elem l =
  let n = List.length l in
  if n = 0 then Seq.empty
  else begin
    let drop_chunk size =
      if size <= 0 || size > n then Seq.empty
      else
        Seq.init
          ((n / size) + if n mod size = 0 then 0 else 1)
          (fun i ->
            List.filteri (fun j _ -> j < i * size || j >= (i + 1) * size) l)
    in
    let rec chunk_sizes s () =
      if s = 0 then Seq.Nil else Seq.Cons (s, chunk_sizes (s / 2))
    in
    let removals = Seq.concat_map drop_chunk (chunk_sizes n) in
    let in_place =
      Seq.concat_map
        (fun i ->
          match List.nth_opt l i with
          | None -> Seq.empty
          | Some x ->
            Seq.map
              (fun x' -> List.mapi (fun j y -> if j = i then x' else y) l)
              (shrink_elem x))
        (Seq.init n Fun.id)
    in
    Seq.append removals in_place
  end

let pair shrink_a shrink_b (a, b) =
  Seq.append
    (Seq.map (fun a' -> (a', b)) (shrink_a a))
    (Seq.map (fun b' -> (a, b')) (shrink_b b))
