type 'a t = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  print : 'a -> string;
}

let make ?(shrink = Shrink.nothing) ?(print = fun _ -> "<opaque>") gen =
  { gen; shrink; print }

let gen t = t.gen
let shrink t = t.shrink
let print t = t.print

let int_range ?shrink_target ~lo ~hi () =
  let target =
    match shrink_target with
    | Some tg ->
      if tg < lo || tg > hi then
        invalid_arg "Arbitrary.int_range: shrink target outside range";
      tg
    | None -> if lo <= 0 && hi >= 0 then 0 else lo
  in
  {
    gen = Gen.int_range ~lo ~hi;
    shrink = Shrink.int ~target;
    print = string_of_int;
  }

let float_range ~lo ~hi =
  {
    gen = Gen.float_range ~lo ~hi;
    shrink = (fun x -> Seq.filter (fun c -> lo <= c && c <= hi) (Shrink.float ~target:lo x));
    print = (fun x -> Printf.sprintf "%.17g" x);
  }

let log_float_range ~lo ~hi =
  { (float_range ~lo ~hi) with gen = Gen.log_float_range ~lo ~hi }

let bool = { gen = Gen.bool; shrink = (function true -> Seq.return false | false -> Seq.empty); print = string_of_bool }

let oneof_value ?(print = fun _ -> "<choice>") xs =
  (* Shrinks toward the head of the list: order alternatives simplest
     first. *)
  {
    gen = Gen.oneof_value xs;
    shrink =
      (fun x ->
        match xs with
        | simplest :: _ when simplest <> x -> Seq.return simplest
        | _ -> Seq.empty);
    print;
  }

let list ~max_len elem =
  if max_len < 0 then invalid_arg "Arbitrary.list: negative max_len";
  {
    gen = Gen.list ~len:(Gen.int_range ~lo:0 ~hi:max_len) elem.gen;
    shrink = Shrink.list elem.shrink;
    print =
      (fun l -> "[" ^ String.concat "; " (List.map elem.print l) ^ "]");
  }

let pair a b =
  {
    gen = Gen.pair a.gen b.gen;
    shrink = Shrink.pair a.shrink b.shrink;
    print = (fun (x, y) -> Printf.sprintf "(%s, %s)" (a.print x) (b.print y));
  }

let map ?(shrink = Shrink.nothing) ?(print = fun _ -> "<mapped>") f t =
  { gen = Gen.map f t.gen; shrink; print }
