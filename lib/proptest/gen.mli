(** Generator combinators: a ['a t] consumes pseudo-randomness and yields
    a value.

    Generators are plain functions of the repo's deterministic {!Rng}, so
    a value is fully determined by the [(seed, path)] pair the runner
    derives the stream from — the property layer's replayability rests on
    that and nothing else.  Generation order matters: combinators
    evaluate left-to-right so a given stream always decodes to the same
    value. *)

type 'a t = Nakamoto_prob.Rng.t -> 'a

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val bool : bool t

val int_range : lo:int -> hi:int -> int t
(** Uniform on the inclusive range.  @raise Invalid_argument if [lo > hi]. *)

val float_range : lo:float -> hi:float -> float t
(** Uniform on [[lo, hi)].  @raise Invalid_argument unless finite
    [lo <= hi]. *)

val log_float_range : lo:float -> hi:float -> float t
(** Log-uniform on [[lo, hi)] — the right prior for scale parameters like
    [c] and [n].  @raise Invalid_argument unless [0 < lo <= hi]. *)

val oneof : 'a t list -> 'a t
(** Uniform choice among generators.  @raise Invalid_argument on []. *)

val oneof_value : 'a list -> 'a t
(** Uniform choice among constants.  @raise Invalid_argument on []. *)

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice.  @raise Invalid_argument unless weights sum > 0. *)

val list : len:int t -> 'a t -> 'a list t
val array : len:int t -> 'a t -> 'a array t
