(** The property runner: deterministic trials addressed by [(seed, path)].

    Trial [i] of a property draws its input from
    [Rng.of_path ~seed:(property_seed seed name) [i]] — the same audited
    derivation the campaign engine uses — so a reported failure replays
    bit-identically from the printed pair alone, on any machine and in
    any test order.  The property name is folded into the stream seed so
    concurrent properties at one base seed stay decorrelated; replay
    needs only the base seed and the path.

    Environment overrides (all optional):
    - [PROPTEST_SEED]: base seed for every property (decimal or 0x hex).
    - [PROPTEST_TRIALS]: trial count for every property — the soak tier
      sets this large.
    - [PROPTEST_REPLAY]: a comma-separated path; each property runs
      exactly that one trial.  Combine with the test binary's name filter
      to replay a single printed failure, e.g.
      {v
      PROPTEST_SEED=42 PROPTEST_REPLAY=17 \
        dune exec test/prop/prop_main.exe -- test engine
      v} *)

type failure = {
  name : string;
  seed : int64;  (** the base seed to put in [PROPTEST_SEED] *)
  path : int list;  (** the trial path to put in [PROPTEST_REPLAY] *)
  trials_run : int;
  shrink_steps : int;
  original_input : string;
  shrunk_input : string;
  error : string;  (** the (shrunk) property's exception rendering *)
}

exception Failed of failure
(** Raised by {!check}; rendered by {!failure_message} (also registered
    with [Printexc], so uncaught failures print the replay line). *)

val failure_message : failure -> string
(** Multi-line report: inputs before and after shrinking, the error, and
    the copy-pasteable replay one-liner. *)

val default_seed : int64
(** [42L] — the base seed when neither the caller nor the environment
    supplies one. *)

val property_seed : seed:int64 -> name:string -> int64
(** The per-property stream seed: the base seed with the property name
    folded in.  Trial [path] of property [name] draws its input from
    [Rng.of_path ~seed:(property_seed ~seed ~name) path] — exposed so
    external tooling (and the engine's own self-tests) can reproduce a
    generated input without going through {!check}. *)

val check :
  ?count:int -> ?seed:int64 -> name:string -> 'a Arbitrary.t ->
  ('a -> unit) -> unit
(** [check ~name arb prop] runs [prop] on [count] (default 100) generated
    inputs; a property fails by raising any exception.  On failure the
    input is greedily shrunk (bounded at 1000 extra property executions)
    and {!Failed} is raised.
    @raise Invalid_argument if [count <= 0] or an override variable is
    malformed. *)

val soak_active : unit -> bool
(** Whether [PROPTEST_TRIALS] is set — lets suites scale inner sizes
    (not just trial counts) in the soak tier. *)
