type scale = Linear | Log

let scale_name = function Linear -> "lin" | Log -> "log"

let scale_of_name = function
  | "lin" -> Some Linear
  | "log" -> Some Log
  | _ -> None

type axis = { a_lo : float; a_hi : float; a_count : int; a_scale : scale }

let axis ~lo ~hi ~count ~scale =
  if not (Float.is_finite lo && Float.is_finite hi && lo < hi) then
    invalid_arg "Grid.axis: needs finite lo < hi";
  if count < 2 then invalid_arg "Grid.axis: needs at least 2 vertices";
  if scale = Log && lo <= 0. then
    invalid_arg "Grid.axis: log scale needs a positive lo";
  { a_lo = lo; a_hi = hi; a_count = count; a_scale = scale }

let vertex a i =
  (* Pin the endpoints exactly: the in-box test and the cell boxes must
     use lo/hi verbatim, not a float reconstruction of them. *)
  if i <= 0 then a.a_lo
  else if i >= a.a_count - 1 then a.a_hi
  else begin
    let t = float_of_int i /. float_of_int (a.a_count - 1) in
    match a.a_scale with
    | Linear -> a.a_lo +. ((a.a_hi -. a.a_lo) *. t)
    | Log -> a.a_lo *. ((a.a_hi /. a.a_lo) ** t)
  end

let cells a = a.a_count - 1

let locate a x =
  if not (x >= a.a_lo && x <= a.a_hi) then None
  else begin
    (* Counts are small (tables are a few dozen vertices per axis at
       most), so a linear scan beats binary search bookkeeping. *)
    let rec go j =
      if j >= a.a_count - 2 then a.a_count - 2
      else if x < vertex a (j + 1) then j
      else go (j + 1)
    in
    Some (go 0)
  end

let weight a j x =
  let v0 = vertex a j and v1 = vertex a (j + 1) in
  let t =
    match a.a_scale with
    | Linear -> (x -. v0) /. (v1 -. v0)
    | Log -> Stdlib.log (x /. v0) /. Stdlib.log (v1 /. v0)
  in
  Float.min 1. (Float.max 0. t)

(* Axis order is fixed: p, n, delta, nu. *)
let dims = 4

type t = { axes : axis array }

let create ~p ~n ~delta ~nu =
  if p.a_lo <= 0. || p.a_hi >= 1. then
    invalid_arg "Grid.create: p axis must lie inside (0, 1)";
  if n.a_lo < 4. then invalid_arg "Grid.create: n axis must start at >= 4";
  if delta.a_lo < 1. then
    invalid_arg "Grid.create: delta axis must start at >= 1";
  if nu.a_lo <= 0. || nu.a_hi >= 0.5 then
    invalid_arg "Grid.create: nu axis must lie inside (0, 1/2)";
  { axes = [| p; n; delta; nu |] }

let axes t = t.axes
let p_axis t = t.axes.(0)
let n_axis t = t.axes.(1)
let delta_axis t = t.axes.(2)
let nu_axis t = t.axes.(3)

let vertex_count t =
  Array.fold_left (fun acc a -> acc * a.a_count) 1 t.axes

let cell_count t = Array.fold_left (fun acc a -> acc * cells a) 1 t.axes

(* Row-major in axis order: the p index varies slowest, nu fastest. *)
let flatten counts idx =
  let acc = ref 0 in
  for d = 0 to dims - 1 do
    acc := (!acc * counts.(d)) + idx.(d)
  done;
  !acc

let unflatten counts id =
  let idx = Array.make dims 0 in
  let rem = ref id in
  for d = dims - 1 downto 0 do
    idx.(d) <- !rem mod counts.(d);
    rem := !rem / counts.(d)
  done;
  idx

let vertex_counts t = Array.map (fun a -> a.a_count) t.axes
let cell_counts t = Array.map cells t.axes
let vertex_id t idx = flatten (vertex_counts t) idx
let vertex_of_id t id = unflatten (vertex_counts t) id
let cell_id t idx = flatten (cell_counts t) idx
let cell_of_id t id = unflatten (cell_counts t) id

let vertex_coords t idx = Array.mapi (fun d i -> vertex t.axes.(d) i) idx

let locate_point t ~p ~n ~delta ~nu =
  let coords = [| p; n; delta; nu |] in
  let idx = Array.make dims 0 in
  let ok = ref true in
  for d = 0 to dims - 1 do
    match locate t.axes.(d) coords.(d) with
    | Some j -> idx.(d) <- j
    | None -> ok := false
  done;
  if !ok then Some idx else None
