(** Precomputed, interval-certified assessment surfaces.

    A table holds one {!Cert.cell} per grid cell (certified zone,
    certified confirmation depth, and the margin/threshold/ratio
    enclosures) plus the exact solver's neat margin at every grid
    vertex.  Queries inside the box whose cell is fully conclusive are
    answered from the table — zone and depth certified equal to the
    exact solver's, margin estimated by scale-aware multilinear
    interpolation of the vertex margins (the estimate provably lies in
    the cell's margin enclosure, since every corner value does) — and
    everything else falls back to the exact solver, with telemetry
    counting both paths.

    {2 Binary format (version 1)}

    {v
    "NAKSURF1"  u32le header_len  header_json
    vertices: margin f64le                       (8 bytes each)
    cells:    zone u8, conf_state u8, conf_z u32le,
              margin/neat/attack/ratio lo,hi f64le  (70 bytes each)
    trailer:  u64le SplitMix64 fold of all preceding bytes
    v}

    The header is canonical JSON in the campaign dialect and embeds a
    {!Nakamoto_campaign.Spec.fingerprint}-style hash of the build
    inputs (axes, epsilon, conf_limit, version); [load] verifies both
    hashes.  Cells are serialized in row-major grid order and every
    cell is a pure function of its index, so the bytes are identical
    across runs and [~jobs] values. *)

type t

val default_epsilon : float
(** [1e-3] — the CLI assess default risk target. *)

val default_conf_limit : int
(** [256]: the certified confirmation search gives up (and the cell
    marks its depth inconclusive) well below the exact solver's 10_000
    limit — interval evaluation of the double-spend sum is O(z^2) per
    cell, and a cell needing hundreds of confirmations sits so close to
    the consistency frontier that falling back is the right answer
    anyway. *)

val default_refine : int
(** [2] — see {!Cert.certify}'s [refine]. *)

val build :
  ?jobs:int -> ?epsilon:float -> ?conf_limit:int -> ?refine:int -> Grid.t -> t
(** Certify every cell (in parallel for [jobs > 1] — bit-identical
    results regardless) and record exact vertex margins.
    @raise Invalid_argument for [jobs < 1], [epsilon] outside (0, 1),
    [conf_limit < 1] or [refine < 1]. *)

val grid : t -> Grid.t
val epsilon : t -> float
val conf_limit : t -> int
val refine : t -> int

val fingerprint : t -> int64
(** Hash of the build inputs, as embedded in the header. *)

val header_json : t -> string
(** The canonical header object (with fingerprint), exactly as
    serialized — what [surface info --header] prints. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val save : t -> path:string -> unit
val load : string -> (t, string) result

(** {2 Queries} *)

type fallback_reason =
  | Outside_box
  | Zone_boundary  (** the cell's zone enclosure straddles a frontier *)
  | Conf_boundary  (** the certified depth search was inconclusive *)

val fallback_label : fallback_reason -> string
(** ["outside_box"] | ["zone_boundary"] | ["conf_boundary"] — telemetry
    label values and [v_fallback] tags. *)

type hit = {
  h_cell : Cert.cell;
  h_margin : float;  (** interpolated margin estimate *)
}

val lookup :
  t -> p:float -> n:float -> delta:float -> nu:float ->
  (hit, fallback_reason) result
(** The raw table query: [Ok] only for in-box points whose cell is
    fully conclusive (zone {e and} confirmation depth). *)

val assess_cached :
  ?telemetry:Nakamoto_telemetry.Registry.t ->
  t ->
  Nakamoto_core.Params.t ->
  Nakamoto_core.Assessment.verdict
(** The serving entry point: a conclusive lookup becomes a
    [v_cached = true] verdict (counted in [surface_hits_total]);
    anything else runs {!Nakamoto_core.Assessment.assess} and tags the
    verdict with the fallback reason (counted in
    [surface_fallbacks_total{reason=...}]).  Never silently disagrees
    with the exact solver: cached zones and depths are certified equal
    to it over the whole cell. *)

(** {2 Introspection} *)

val cell : t -> int -> Cert.cell
val vertex_margin : t -> int -> float

val conclusive_counts : t -> int * int * int
(** (zone-certified, conf-certified, fully conclusive) cell counts. *)

val describe : t -> string
(** One human line for logs and [surface info]. *)
