module I = Nakamoto_numerics.Interval
module Params = Nakamoto_core.Params
module Bounds = Nakamoto_core.Bounds
module Assessment = Nakamoto_core.Assessment
module Json = Nakamoto_campaign.Json
module Worker_pool = Nakamoto_campaign.Worker_pool
module Rng = Nakamoto_prob.Rng
module Tel = Nakamoto_telemetry

type t = {
  grid : Grid.t;
  epsilon : float;
  conf_limit : int;
  refine : int;
  fingerprint : int64;
  vertex_margin : float array;
  cells : Cert.cell array;
}

let grid t = t.grid
let epsilon t = t.epsilon
let conf_limit t = t.conf_limit
let refine t = t.refine
let fingerprint t = t.fingerprint

let default_epsilon = 1e-3
let default_conf_limit = 256
let default_refine = 2

(* ---------- header JSON + fingerprint ---------- *)

let hash_string ?(seed = 0x6E616B616D6F746FL) s =
  (* Spec.fingerprint's fold: SplitMix64 over the canonical bytes. *)
  let acc = ref seed in
  String.iter
    (fun ch ->
      acc := Rng.splitmix64 (Int64.logxor !acc (Int64.of_int (Char.code ch))))
    s;
  !acc

let magic = "NAKSURF1"
let version = 1
let vertex_bytes = 8
let cell_bytes = 70

let axis_json (a : Grid.axis) =
  Json.Obj
    [
      ("lo", Json.Num (Json.float_str a.Grid.a_lo));
      ("hi", Json.Num (Json.float_str a.Grid.a_hi));
      ("count", Json.Num (string_of_int a.Grid.a_count));
      ("scale", Json.Str (Grid.scale_name a.Grid.a_scale));
    ]

let header_core ~grid ~epsilon ~conf_limit ~refine =
  Json.Obj
    [
      ("surface", Json.Str "nakamoto-assessment-surface");
      ("version", Json.Num (string_of_int version));
      ( "axes",
        Json.Obj
          [
            ("p", axis_json (Grid.p_axis grid));
            ("n", axis_json (Grid.n_axis grid));
            ("delta", axis_json (Grid.delta_axis grid));
            ("nu", axis_json (Grid.nu_axis grid));
          ] );
      ("epsilon", Json.Num (Json.float_str epsilon));
      ("conf_limit", Json.Num (string_of_int conf_limit));
      ("refine", Json.Num (string_of_int refine));
      ("vertices", Json.Num (string_of_int (Grid.vertex_count grid)));
      ("cells", Json.Num (string_of_int (Grid.cell_count grid)));
    ]

(* The fingerprint hashes the canonical header-without-fingerprint:
   any build input that changes the table changes these bytes. *)
let fingerprint_of ~grid ~epsilon ~conf_limit ~refine =
  hash_string (Json.render (header_core ~grid ~epsilon ~conf_limit ~refine))

let header_json t =
  match
    header_core ~grid:t.grid ~epsilon:t.epsilon ~conf_limit:t.conf_limit
      ~refine:t.refine
  with
  | Json.Obj fields ->
    Json.render
      (Json.Obj
         (fields @ [ ("fingerprint", Json.Str (Int64.to_string t.fingerprint)) ]))
  | _ -> assert false

(* ---------- build ---------- *)

(* The vertex layer stores the exact solver's own neat margin (same
   float expression as Assessment.assess: [Params.c - Bounds.neat_c_min])
   so interpolated estimates are anchored to exact values — and, because
   each corner lies inside its cells' boxes, every corner value lies in
   the adjacent cells' margin enclosures, hence so does any convex
   interpolation of them. *)
let exact_margin ~p ~n ~delta ~nu =
  let params = Params.create ~n ~delta ~p ~nu in
  Params.c params -. Bounds.neat_c_min ~nu

let certify_cell grid ~epsilon ~conf_limit ~refine id =
  let idx = Grid.cell_of_id grid id in
  let axes = Grid.axes grid in
  let box d =
    I.make
      ~lo:(Grid.vertex axes.(d) idx.(d))
      ~hi:(Grid.vertex axes.(d) (idx.(d) + 1))
  in
  Cert.certify ~refine ~epsilon ~conf_limit ~p:(box 0) ~n:(box 1)
    ~delta:(box 2) ~nu:(box 3)

let build ?(jobs = 1) ?(epsilon = default_epsilon)
    ?(conf_limit = default_conf_limit) ?(refine = default_refine) grid =
  if jobs < 1 then invalid_arg "Table.build: jobs must be >= 1";
  if not (epsilon > 0. && epsilon < 1.) then
    invalid_arg "Table.build: epsilon must lie in (0, 1)";
  if conf_limit < 1 then invalid_arg "Table.build: conf_limit must be >= 1";
  if refine < 1 then invalid_arg "Table.build: refine must be >= 1";
  let nv = Grid.vertex_count grid in
  let vertex_margin =
    Array.init nv (fun id ->
        let coords = Grid.vertex_coords grid (Grid.vertex_of_id grid id) in
        exact_margin ~p:coords.(0) ~n:coords.(1) ~delta:coords.(2)
          ~nu:coords.(3))
  in
  let nc = Grid.cell_count grid in
  let cells =
    if jobs = 1 then
      Array.init nc (certify_cell grid ~epsilon ~conf_limit ~refine)
    else begin
      (* Each chunk is a pure function of its cell ids and results come
         back in task order, so the cell array — and therefore the
         serialized bytes — cannot depend on [jobs] or scheduling. *)
      let chunk = 16 in
      let ntasks = (nc + chunk - 1) / chunk in
      let chunks =
        Worker_pool.run ~jobs
          (fun ~worker:_ task ->
            let start = task * chunk in
            let stop = min nc (start + chunk) in
            Array.init (stop - start) (fun i ->
                certify_cell grid ~epsilon ~conf_limit ~refine (start + i)))
          (Array.init ntasks Fun.id)
      in
      Array.concat (Array.to_list chunks)
    end
  in
  {
    grid;
    epsilon;
    conf_limit;
    refine;
    fingerprint = fingerprint_of ~grid ~epsilon ~conf_limit ~refine;
    vertex_margin;
    cells;
  }

(* ---------- serialization ---------- *)

let zone_code = function
  | Cert.Zone Assessment.Safe -> 0
  | Cert.Zone Assessment.Gap -> 1
  | Cert.Zone Assessment.Broken -> 2
  | Cert.Zone_inconclusive -> 3

let zone_of_code = function
  | 0 -> Some (Cert.Zone Assessment.Safe)
  | 1 -> Some (Cert.Zone Assessment.Gap)
  | 2 -> Some (Cert.Zone Assessment.Broken)
  | 3 -> Some Cert.Zone_inconclusive
  | _ -> None

let add_f64 buf x = Buffer.add_int64_le buf (Int64.bits_of_float x)

let add_interval buf iv =
  add_f64 buf (I.lo iv);
  add_f64 buf (I.hi iv)

let to_string t =
  let header = header_json t in
  let nv = Array.length t.vertex_margin in
  let nc = Array.length t.cells in
  let buf =
    Buffer.create
      (String.length header + 20 + (nv * vertex_bytes) + (nc * cell_bytes))
  in
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int (String.length header));
  Buffer.add_string buf header;
  Array.iter (fun m -> add_f64 buf m) t.vertex_margin;
  Array.iter
    (fun (cell : Cert.cell) ->
      Buffer.add_uint8 buf (zone_code cell.Cert.zone);
      let conf_state, conf_z =
        match cell.Cert.conf with
        | Cert.Conf z -> (0, z)
        | Cert.Conf_none -> (1, 0)
        | Cert.Conf_inconclusive -> (2, 0)
      in
      Buffer.add_uint8 buf conf_state;
      Buffer.add_int32_le buf (Int32.of_int conf_z);
      add_interval buf cell.Cert.margin;
      add_interval buf cell.Cert.neat;
      add_interval buf cell.Cert.attack;
      add_interval buf cell.Cert.ratio)
    t.cells;
  let body = Buffer.contents buf in
  let trailer = Buffer.create 8 in
  Buffer.add_int64_le trailer (hash_string body);
  body ^ Buffer.contents trailer

let parse_axis j =
  let lo = Json.to_float (Json.member j "lo") in
  let hi = Json.to_float (Json.member j "hi") in
  let count = Json.to_int (Json.member j "count") in
  let scale =
    match Grid.scale_of_name (Json.to_string (Json.member j "scale")) with
    | Some s -> s
    | None -> raise (Json.Malformed "unknown axis scale")
  in
  Grid.axis ~lo ~hi ~count ~scale

let of_string s =
  let fail msg = Error (Printf.sprintf "Surface.Table: %s" msg) in
  let len = String.length s in
  if len < 20 then fail "truncated (no header)"
  else if String.sub s 0 8 <> magic then fail "bad magic (not a surface file)"
  else begin
    let hlen = Int32.to_int (String.get_int32_le s 8) in
    if hlen < 2 || 12 + hlen > len then fail "truncated header"
    else begin
      match
        let header = String.sub s 12 hlen in
        let j = Json.parse header in
        if
          Json.to_string (Json.member j "surface")
          <> "nakamoto-assessment-surface"
        then failwith "not an assessment surface";
        if Json.to_int (Json.member j "version") <> version then
          failwith "unsupported surface version";
        let axes = Json.member j "axes" in
        let grid =
          Grid.create
            ~p:(parse_axis (Json.member axes "p"))
            ~n:(parse_axis (Json.member axes "n"))
            ~delta:(parse_axis (Json.member axes "delta"))
            ~nu:(parse_axis (Json.member axes "nu"))
        in
        let epsilon = Json.to_float (Json.member j "epsilon") in
        let conf_limit = Json.to_int (Json.member j "conf_limit") in
        let refine = Json.to_int (Json.member j "refine") in
        let nv = Json.to_int (Json.member j "vertices") in
        let nc = Json.to_int (Json.member j "cells") in
        if nv <> Grid.vertex_count grid || nc <> Grid.cell_count grid then
          failwith "header counts disagree with the axes";
        let declared = Json.to_int64_string (Json.member j "fingerprint") in
        if declared <> fingerprint_of ~grid ~epsilon ~conf_limit ~refine then
          failwith "fingerprint mismatch";
        let voff = 12 + hlen in
        let coff = voff + (nv * vertex_bytes) in
        let troff = coff + (nc * cell_bytes) in
        if troff + 8 <> len then failwith "truncated or oversized body";
        let body_hash = hash_string (String.sub s 0 troff) in
        if String.get_int64_le s troff <> body_hash then
          failwith "content hash mismatch (corrupt body)";
        let f64 off = Int64.float_of_bits (String.get_int64_le s off) in
        let vertex_margin =
          Array.init nv (fun i -> f64 (voff + (i * vertex_bytes)))
        in
        let cells =
          Array.init nc (fun i ->
              let off = coff + (i * cell_bytes) in
              let zone =
                match zone_of_code (Char.code s.[off]) with
                | Some z -> z
                | None -> failwith "bad zone code"
              in
              let conf =
                match Char.code s.[off + 1] with
                | 0 ->
                  Cert.Conf (Int32.to_int (String.get_int32_le s (off + 2)))
                | 1 -> Cert.Conf_none
                | 2 -> Cert.Conf_inconclusive
                | _ -> failwith "bad confirmation code"
              in
              let iv k =
                let base = off + 6 + (16 * k) in
                I.make ~lo:(f64 base) ~hi:(f64 (base + 8))
              in
              {
                Cert.zone;
                conf;
                margin = iv 0;
                neat = iv 1;
                attack = iv 2;
                ratio = iv 3;
              })
        in
        {
          grid;
          epsilon;
          conf_limit;
          refine;
          fingerprint = declared;
          vertex_margin;
          cells;
        }
      with
      | t -> Ok t
      | exception Json.Malformed msg -> fail ("malformed header: " ^ msg)
      | exception Failure msg -> fail msg
      | exception Invalid_argument msg -> fail msg
    end
  end

let save t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error (Printf.sprintf "Surface.Table: %s" msg)

(* ---------- queries ---------- *)

type fallback_reason = Outside_box | Zone_boundary | Conf_boundary

let fallback_label = function
  | Outside_box -> "outside_box"
  | Zone_boundary -> "zone_boundary"
  | Conf_boundary -> "conf_boundary"

let interpolate t idx coords =
  let axes = Grid.axes t.grid in
  let w =
    Array.init Grid.dims (fun d -> Grid.weight axes.(d) idx.(d) coords.(d))
  in
  let acc = ref 0. in
  let widx = Array.make Grid.dims 0 in
  for corner = 0 to (1 lsl Grid.dims) - 1 do
    let wt = ref 1. in
    for d = 0 to Grid.dims - 1 do
      let bit = (corner lsr d) land 1 in
      widx.(d) <- idx.(d) + bit;
      wt := !wt *. (if bit = 1 then w.(d) else 1. -. w.(d))
    done;
    acc := !acc +. (!wt *. t.vertex_margin.(Grid.vertex_id t.grid widx))
  done;
  !acc

type hit = { h_cell : Cert.cell; h_margin : float }

let lookup t ~p ~n ~delta ~nu =
  match Grid.locate_point t.grid ~p ~n ~delta ~nu with
  | None -> Error Outside_box
  | Some idx -> begin
    let cell = t.cells.(Grid.cell_id t.grid idx) in
    match (cell.Cert.zone, cell.Cert.conf) with
    | Cert.Zone_inconclusive, _ -> Error Zone_boundary
    | _, Cert.Conf_inconclusive -> Error Conf_boundary
    | _ ->
      Ok { h_cell = cell; h_margin = interpolate t idx [| p; n; delta; nu |] }
  end

let assess_cached ?telemetry t (params : Params.t) =
  let count_hit () =
    match telemetry with
    | Some r -> Tel.Counter.incr (Tel.Registry.counter r "surface_hits_total")
    | None -> ()
  in
  let count_fallback reason =
    match telemetry with
    | Some r ->
      Tel.Counter.incr
        (Tel.Registry.counter r
           ~labels:[ ("reason", fallback_label reason) ]
           "surface_fallbacks_total")
    | None -> ()
  in
  match
    lookup t ~p:params.Params.p ~n:params.Params.n ~delta:params.Params.delta
      ~nu:params.Params.nu
  with
  | Ok h ->
    count_hit ();
    let zone =
      match h.h_cell.Cert.zone with
      | Cert.Zone z -> z
      | Cert.Zone_inconclusive -> assert false
    in
    let confirmations, conf_reason =
      match h.h_cell.Cert.conf with
      | Cert.Conf z -> (Some z, None)
      | Cert.Conf_none -> (None, Some "outside_consistency")
      | Cert.Conf_inconclusive -> assert false
    in
    {
      Assessment.v_params = params;
      v_zone = zone;
      v_margin = h.h_margin;
      v_margin_lo = I.lo h.h_cell.Cert.margin;
      v_margin_hi = I.hi h.h_cell.Cert.margin;
      v_confirmations = confirmations;
      v_conf_reason = conf_reason;
      v_cached = true;
      v_fallback = None;
    }
  | Error reason ->
    count_fallback reason;
    let v = Assessment.verdict_of (Assessment.assess params) in
    { v with Assessment.v_fallback = Some (fallback_label reason) }

(* ---------- reporting ---------- *)

let cell t id = t.cells.(id)
let vertex_margin t id = t.vertex_margin.(id)

let conclusive_counts t =
  let zones = ref 0 and confs = ref 0 and full = ref 0 in
  Array.iter
    (fun (cell : Cert.cell) ->
      let z = cell.Cert.zone <> Cert.Zone_inconclusive in
      let c = cell.Cert.conf <> Cert.Conf_inconclusive in
      if z then incr zones;
      if c then incr confs;
      if z && c then incr full)
    t.cells;
  (!zones, !confs, !full)

let describe t =
  let zones, confs, full = conclusive_counts t in
  Printf.sprintf
    "%d vertices, %d cells (%d zone-certified, %d conf-certified, %d fully \
     conclusive), epsilon %g, conf_limit %d, refine %d, fingerprint %Ld"
    (Grid.vertex_count t.grid) (Grid.cell_count t.grid) zones confs full
    t.epsilon t.conf_limit t.refine t.fingerprint
