module I = Nakamoto_numerics.Interval
module Assessment = Nakamoto_core.Assessment

type zone_cert = Zone of Assessment.zone | Zone_inconclusive
type conf_cert = Conf of int | Conf_none | Conf_inconclusive

type cell = {
  zone : zone_cert;
  conf : conf_cert;
  margin : I.t;
  neat : I.t;
  attack : I.t;
  ratio : I.t;
}

let one = I.point 1.
let two = I.point 2.

(* Every mirror below replays the exact solver's float expression with
   the {e same} operation tree, only over intervals.  Round-to-nearest
   keeps each primitive within one ulp of its true result and each
   interval op widens one ulp outward, so by induction the enclosure
   contains the float the exact solver computes at every point of the
   box — which is what lets a conclusive comparison of enclosures stand
   in for the exact solver's verdict. *)

(* Params.c: [1. /. (p *. n *. delta)] *)
let c_iv ~p ~n ~delta = I.div one (I.mul (I.mul p n) delta)

(* Bounds.neat_c_min: [2. *. mu /. log (mu /. nu)] with [mu = 1. -. nu] *)
let neat_iv ~nu =
  let mu = I.one_minus nu in
  I.div (I.mul two mu) (I.log (I.div mu nu))

(* Assessment.assess: [1. /. ((1. /. nu) -. (1. /. mu))] *)
let attack_iv ~nu =
  let mu = I.one_minus nu in
  I.div one (I.sub (I.div one nu) (I.div one mu))

(* Confirmation.assess_checked's rate ratio:
   [adversary_rate /. honest_rate] where
   [adversary_rate = p *. nu *. n] (Params.adversary_rate) and
   [honest_rate = exp ((2. *. delta *. log_abar) +. log_alpha1)]
   (Conv_chain.convergence_rate), with
   [log_abar  = (mu *. n) *. log1p (-. p)] and
   [log_alpha1 = log (p *. mu *. n) +. ((mu *. n -. 1.) *. log1p (-. p))]. *)
let ratio_iv ~p ~n ~delta ~nu =
  let mu = I.one_minus nu in
  let log1p_neg_p = I.log1p (I.neg p) in
  let log_abar = I.mul (I.mul mu n) log1p_neg_p in
  let log_alpha1 =
    I.add
      (I.log (I.mul (I.mul p mu) n))
      (I.mul (I.sub (I.mul mu n) one) log1p_neg_p)
  in
  let log_honest = I.add (I.mul (I.mul two delta) log_abar) log_alpha1 in
  let adversary = I.mul (I.mul p nu) n in
  I.div adversary (I.exp log_honest)

(* Confirmation.nakamoto_double_spend computes
   [clamp 0 1 (1. -. acc)] with
   [acc = sum_k exp log_pois *. (1. -. ratio ** float (z - k))].
   Mirroring that subtraction literally is useless over a box: the
   interval enclosure of [acc ~= 1] is as wide as the lambda spread,
   which swamps a double-spend probability of 1e-4.  So this enclosure
   takes the algebraically identical positive form

     ds = sum_{k=0}^{z} P_k(lambda) * ratio^(z-k)  +  P(X > z)

   (every term nonnegative, no cancellation), bounds the Poisson tail by
   geometric domination — the term ratio P_{k+1}/P_k = lambda/(k+1) is
   at most lambda/(z+2) past z, so

     P_{z+1}  <=  P(X > z)  <=  P_{z+1} / (1 - lambda/(z+2))

   — and then pads outward by a forward rounding-error bound for the
   exact solver's float evaluation of the subtraction form.  The pad
   covers: log_fact accumulated over <= 2z ops on a value <= z log z,
   amplified through exp at derivative <= 1; libm pow within a few
   ulps; and z+1 summations of terms <= 1.  Each contributes O(z^2)
   ulps absolute, so 1e-12 + z^2 * 1e-13 dominates by orders of
   magnitude.  The padded interval therefore contains the exact
   solver's float at every ratio in the box, which is the containment
   {!certify_conf} needs; against thresholds like epsilon = 1e-3 the
   pad is invisible. *)
let double_spend_iv ~ratio ~confirmations:z =
  let lambda = I.mul (I.point (float_of_int z)) ratio in
  let log_lambda = I.log lambda in
  let log_fact = ref (I.point 0.) in
  let log_pois k =
    I.sub (I.sub (I.mul (I.point (float_of_int k)) log_lambda) lambda)
      !log_fact
  in
  let survive = ref (I.point 0.) in
  for k = 0 to z do
    if k > 0 then
      log_fact := I.add !log_fact (I.log (I.point (float_of_int k)));
    let caught = I.pow ratio (float_of_int (z - k)) in
    survive := I.add !survive (I.mul (I.exp (log_pois k)) caught)
  done;
  log_fact := I.add !log_fact (I.log (I.point (float_of_int (z + 1))));
  let p_next = I.exp (log_pois (z + 1)) in
  let denom =
    I.sub one (I.div lambda (I.point (float_of_int (z + 2))))
  in
  let tail = I.make ~lo:(I.lo p_next) ~hi:(I.hi (I.div p_next denom)) in
  let ds = I.add !survive tail in
  let pad = 1e-12 +. (float_of_int (z * z) *. 1e-13) in
  I.clamp ~lo:0. ~hi:1. (I.make ~lo:(I.lo ds -. pad) ~hi:(I.hi ds +. pad))

let top = I.make ~lo:neg_infinity ~hi:infinity
let nonneg = I.make ~lo:0. ~hi:infinity

let certify_conf ~epsilon ~conf_limit ratio =
  (* [Conf z] is sound because the exact searcher walks z = 1, 2, ...:
     every depth before [z] is certified above epsilon (lo > eps), and
     [z] itself certified at-or-below (hi <= eps), so the exact search
     stops exactly there.  Any straddle means the exact answer could go
     either way inside the cell — inconclusive, fall back. *)
  if I.lo ratio >= 1. then Conf_none
  else if I.hi ratio >= 1. then Conf_inconclusive
  else begin
    let rec search z =
      if z > conf_limit then Conf_inconclusive
      else begin
        let ds = double_spend_iv ~ratio ~confirmations:z in
        if I.hi ds <= epsilon then Conf z
        else if I.lo ds <= epsilon then Conf_inconclusive
        else search (z + 1)
      end
    in
    try search 1 with Invalid_argument _ -> Conf_inconclusive
  end

let subdivide refine iv =
  (* Linear split with exact endpoints: adjacent sub-intervals share a
     vertex, so the union covers the cell with no gap a point could
     fall through. *)
  let lo = I.lo iv and hi = I.hi iv in
  Array.init refine (fun k ->
      let at j =
        if j = 0 then lo
        else if j = refine then hi
        else lo +. ((hi -. lo) *. (float_of_int j /. float_of_int refine))
      in
      I.make ~lo:(at k) ~hi:(at (k + 1)))

let conf_join a b =
  match (a, b) with
  | Conf x, Conf y when x = y -> Conf x
  | Conf_none, Conf_none -> Conf_none
  | _ -> Conf_inconclusive

let certify_conf_refined ~epsilon ~conf_limit ~refine ~p ~n ~delta ~nu =
  (* The naive ratio enclosure suffers the classic dependency blow-up —
     p and n appear in both the adversary rate and (through alpha1) the
     honest rate, and the interval quotient cannot see they are the same
     values, so the width scales with the square of the cell's spread.
     Refinement wins it back soundly: cover the cell with refine^4
     sub-boxes, certify each independently, and accept only a unanimous
     verdict — every parameter point lies in some sub-box, so unanimity
     certifies the whole cell. *)
  let boxes d =
    subdivide refine (match d with 0 -> p | 1 -> n | 2 -> delta | _ -> nu)
  in
  let ps = boxes 0 and ns = boxes 1 and ds = boxes 2 and nus = boxes 3 in
  let verdict = ref None in
  (try
     Array.iter
       (fun p ->
         Array.iter
           (fun n ->
             Array.iter
               (fun delta ->
                 Array.iter
                   (fun nu ->
                     let v =
                       match ratio_iv ~p ~n ~delta ~nu with
                       | r -> certify_conf ~epsilon ~conf_limit r
                       | exception Invalid_argument _ -> Conf_inconclusive
                     in
                     let joined =
                       match !verdict with
                       | None -> v
                       | Some prev -> conf_join prev v
                     in
                     if joined = Conf_inconclusive then raise Exit;
                     verdict := Some joined)
                   nus)
               ds)
           ns)
       ps;
     match !verdict with Some v -> v | None -> Conf_inconclusive
   with Exit -> Conf_inconclusive)

let certify ~refine ~epsilon ~conf_limit ~p ~n ~delta ~nu =
  let c = c_iv ~p ~n ~delta in
  (* Near nu = 1/2 the widened denominators can straddle zero and the
     interval ops refuse (div-by-zero-containing, log of nonpositive);
     an unrepresentable enclosure is just the trivially-true one, and
     the verdict goes inconclusive. *)
  let thresholds =
    match (neat_iv ~nu, attack_iv ~nu) with
    | pair -> Some pair
    | exception Invalid_argument _ -> None
  in
  let zone, margin, neat, attack =
    match thresholds with
    | None -> (Zone_inconclusive, top, top, top)
    | Some (neat, attack) ->
      let margin = I.sub c neat in
      let zone =
        if I.lo c > I.hi neat then Zone Assessment.Safe
        else if I.hi c <= I.lo neat && I.hi c < I.lo attack then
          Zone Assessment.Broken
        else if I.hi c <= I.lo neat && I.lo c >= I.hi attack then
          Zone Assessment.Gap
        else Zone_inconclusive
      in
      (zone, margin, neat, attack)
  in
  if refine < 1 then invalid_arg "Cert.certify: refine must be >= 1";
  let ratio =
    match ratio_iv ~p ~n ~delta ~nu with
    | r -> Some r
    | exception Invalid_argument _ -> None
  in
  let conf =
    match ratio with
    | Some r when refine = 1 -> certify_conf ~epsilon ~conf_limit r
    | _ -> certify_conf_refined ~epsilon ~conf_limit ~refine ~p ~n ~delta ~nu
  in
  {
    zone;
    conf;
    margin;
    neat;
    attack;
    ratio = (match ratio with Some r -> r | None -> nonneg);
  }
