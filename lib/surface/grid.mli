(** The (p, n, Δ, ν) parameter box and its rectangular grid.

    Axis order is fixed — p, n, delta, nu — and indices are row-major in
    that order (p slowest, nu fastest), which is what makes serialized
    tables a pure function of the axes: every vertex and cell has one
    canonical position in the file.

    Vertex coordinates pin the axis endpoints {e exactly} ([vertex a 0 =
    lo], [vertex a (count-1) = hi]); interior vertices are linearly or
    log-linearly spaced.  A cell [j] on an axis spans
    [[vertex j, vertex (j+1)]]. *)

type scale = Linear | Log

val scale_name : scale -> string
(** ["lin"] | ["log"] — the header-JSON encoding. *)

val scale_of_name : string -> scale option

type axis = private {
  a_lo : float;
  a_hi : float;
  a_count : int;  (** vertices, >= 2; cells = count - 1 *)
  a_scale : scale;
}

val axis : lo:float -> hi:float -> count:int -> scale:scale -> axis
(** @raise Invalid_argument unless [lo < hi] are finite, [count >= 2],
    and [lo > 0.] for log scale. *)

val vertex : axis -> int -> float
val cells : axis -> int

val locate : axis -> float -> int option
(** Cell index [j] with [vertex j <= x <= vertex (j+1)], or [None]
    outside [[lo, hi]]. *)

val weight : axis -> int -> float -> float
(** Interpolation weight of [x] within cell [j], in [[0, 1]] —
    scale-aware (log axes interpolate in log space). *)

val dims : int
(** 4 *)

type t = private { axes : axis array }

val create : p:axis -> n:axis -> delta:axis -> nu:axis -> t
(** @raise Invalid_argument unless the box sits strictly inside the
    {!Nakamoto_core.Params.create} domain: p in (0,1), n >= 4,
    delta >= 1, nu in (0, 1/2).  [nu = 0.] is excluded on purpose —
    the zero-adversary degenerate case takes the exact path. *)

val axes : t -> axis array
val p_axis : t -> axis
val n_axis : t -> axis
val delta_axis : t -> axis
val nu_axis : t -> axis

val vertex_count : t -> int
val cell_count : t -> int
val vertex_counts : t -> int array
val cell_counts : t -> int array

val vertex_id : t -> int array -> int
val vertex_of_id : t -> int -> int array
val cell_id : t -> int array -> int
val cell_of_id : t -> int -> int array

val vertex_coords : t -> int array -> float array
(** Per-axis coordinates [[| p; n; delta; nu |]] of a vertex index. *)

val locate_point :
  t -> p:float -> n:float -> delta:float -> nu:float -> int array option
(** Cell multi-index containing the point, or [None] outside the box. *)
