(** Interval certification of one grid cell.

    The certifier replays the exact solver's float expressions —
    {!Nakamoto_core.Params.c}, {!Nakamoto_core.Bounds.neat_c_min}, the
    PSS attack threshold, the Eq. 44 rate ratio and Nakamoto's
    double-spend sum — with the {e same} operation trees over
    outward-rounded intervals spanning the cell's parameter box.  Since
    round-to-nearest keeps every primitive within one ulp of its true
    value and every interval op widens one ulp outward, each enclosure
    provably contains the float the exact solver computes at {e every}
    point of the cell.  A verdict read off disjoint enclosures therefore
    equals the exact solver's verdict throughout the cell; overlapping
    enclosures mean the cell straddles a frontier and the answer is
    [*_inconclusive] — the caller must fall back to the exact solver. *)

module I = Nakamoto_numerics.Interval

type zone_cert =
  | Zone of Nakamoto_core.Assessment.zone
      (** the exact solver returns this zone everywhere in the cell *)
  | Zone_inconclusive

type conf_cert =
  | Conf of int
      (** the exact confirmation search returns this depth everywhere *)
  | Conf_none
      (** rate ratio certified >= 1 everywhere: the exact solver reports
          outside-consistency (confirmations [None]) *)
  | Conf_inconclusive

type cell = {
  zone : zone_cert;
  conf : conf_cert;
  margin : I.t;  (** encloses [c - neat_threshold] over the cell *)
  neat : I.t;
  attack : I.t;
  ratio : I.t;
      (** encloses the exact rate ratio; the trivial [[0, inf]] when the
          mirrored expression was unrepresentable *)
}

val c_iv : p:I.t -> n:I.t -> delta:I.t -> I.t
val neat_iv : nu:I.t -> I.t
val attack_iv : nu:I.t -> I.t
val ratio_iv : p:I.t -> n:I.t -> delta:I.t -> nu:I.t -> I.t

val double_spend_iv : ratio:I.t -> confirmations:int -> I.t
(** Encloses {!Nakamoto_core.Confirmation.nakamoto_double_spend} for a
    ratio interval strictly inside (0, 1).  Not a literal mirror: the
    exact solver's [1 - sum] form cancels catastrophically in interval
    arithmetic, so this evaluates the algebraically identical
    all-positive form (survival sum plus a geometrically-dominated
    Poisson tail) and pads outward by a forward rounding-error bound
    on the exact solver's evaluation — see the implementation comment
    for the containment argument. *)

val certify :
  refine:int ->
  epsilon:float ->
  conf_limit:int ->
  p:I.t ->
  n:I.t ->
  delta:I.t ->
  nu:I.t ->
  cell
(** Certify one cell box.  Never raises on boxes inside the
    {!Nakamoto_core.Params.create} domain: unrepresentable enclosures
    (widened denominators straddling zero near [nu = 1/2], rate searches
    past [conf_limit]) degrade to the inconclusive verdicts.

    [refine] covers the cell with [refine^4] sub-boxes for
    the confirmation pass and accepts only a unanimous depth verdict —
    a sound counter to the dependency blow-up in the ratio quotient
    (p and n appear on both sides of the division, which the interval
    arithmetic cannot see), at [refine^4] ratio evaluations per cell.
    [refine = 1] is the plain single-enclosure certification.
    @raise Invalid_argument if [refine < 1]. *)
