(* Settlement calculator: "how many confirmations should a merchant wait?"

   Uses the paper's conservative accounting — honest progress counted only
   at convergence opportunities (abar^(2 Delta) alpha1 per round, Eq. 44),
   the adversary at full binomial rate (p nu n, Eq. 27) — so the depths
   hold against the strongest Delta-delay adversary.  The race analysis is
   cross-checked three ways: gambler's-ruin closed form, an absorbing
   Markov chain on the attacker's lead, and the full protocol simulator
   running the private-chain attack from behind. *)

module Sim = Nakamoto_sim
open Nakamoto_core

let () =
  (* 1. Depth table across adversary strength. *)
  let assessments =
    List.map
      (fun nu -> Confirmation.assess (Params.of_c ~n:1e5 ~delta:10. ~nu ~c:6.))
      [ 0.05; 0.10; 0.20; 0.30 ]
  in
  print_string (Nakamoto_numerics.Table.render (Confirmation.to_table assessments));

  (* 2. The race, three ways. *)
  let honest_rate = 0.10 and adversary_rate = 0.04 and deficit = 3 in
  let closed =
    Confirmation.overtake_probability ~honest_rate ~adversary_rate ~deficit
  in
  let chain =
    Confirmation.overtake_probability_bounded ~honest_rate ~adversary_rate
      ~deficit ~give_up_behind:80
  in
  Printf.printf
    "\novertake probability from %d behind (rates %.2f vs %.2f):\n" deficit
    adversary_rate honest_rate;
  Printf.printf "  gambler's ruin closed form   %.8f\n" closed;
  Printf.printf "  absorbing Markov chain       %.8f\n" chain;

  (* 3. Monte-Carlo with the jump-chain law the analysis assumes. *)
  let rng = Nakamoto_prob.Rng.create ~seed:99L in
  let trials = 200_000 in
  let q = adversary_rate /. (adversary_rate +. honest_rate) in
  let wins = ref 0 in
  for _ = 1 to trials do
    let lead = ref (-deficit) in
    while !lead > -80 && !lead < 1 do
      if Nakamoto_prob.Rng.bernoulli rng ~p:q then incr lead else decr lead
    done;
    if !lead >= 1 then incr wins
  done;
  Printf.printf "  Monte-Carlo (%d races)    %.8f\n" trials
    (float_of_int !wins /. float_of_int trials);

  (* 4. Nakamoto's whitepaper formula for comparison. *)
  Printf.printf "\nNakamoto double-spend probabilities at ratio %.2f:\n"
    (adversary_rate /. honest_rate);
  List.iter
    (fun z ->
      Printf.printf "  z = %2d  ->  %.3e\n" z
        (Confirmation.nakamoto_double_spend
           ~ratio:(adversary_rate /. honest_rate)
           ~confirmations:z))
    [ 1; 2; 4; 6; 10 ]
