(* Regenerates the paper's Figure 1 (n = 1e5, Delta = 1e13): the maximum
   tolerable adversarial fraction nu as a function of c under our bound,
   the PSS consistency bound, and the PSS attack.  Writes figure1.csv next
   to the current directory and renders an ASCII plot. *)

open Nakamoto_core

let () =
  let rows = Figure1.series ~c_grid:(Figure1.default_c_grid ()) () in
  let table = Figure1.to_table rows in
  print_string (Nakamoto_numerics.Table.render table);
  print_newline ();
  print_string (Figure1.to_plot rows);
  Nakamoto_numerics.Table.save_csv table ~path:"figure1.csv";
  print_endline "series written to figure1.csv";
  (* The qualitative content of the figure, as checked facts. *)
  Printf.printf "shape invariants (ours >= PSS, attack >= ours, monotone): %b\n"
    (Figure1.shape_invariants_hold rows);
  let at c =
    let r = Figure1.compute_row ~c () in
    Printf.printf
      "  c = %-6g ours %.4f | PSS %.4f | attack %.4f | gap closed by us: %.4f\n"
      c r.ours_neat r.pss_consistency r.pss_attack
      (r.ours_neat -. r.pss_consistency)
  in
  List.iter at [ 0.3; 1.; 2.; 3.; 10.; 100. ]
