(* A tour of the Markov machinery behind the paper's proof.

   Builds the suffix chain C_F (Figure 2) at a small Delta, audits the
   properties the paper asserts (irreducible, aperiodic), compares the
   closed-form stationary distribution (Eq. 37) with two numeric solvers,
   measures mixing, and finishes with the absorbing-chain race that the
   settlement calculator is built on. *)

module Markov = Nakamoto_markov
open Nakamoto_core

let () =
  let delta = 4 and alpha = 0.25 in
  let chain = Suffix_chain.build ~delta ~alpha in
  Printf.printf "suffix chain C_F at Delta = %d, alpha = %g\n" delta alpha;
  Printf.printf "  states       %d (= 2 Delta + 1)\n" (Markov.Chain.size chain);
  Printf.printf "  irreducible  %b\n" (Markov.Chain.is_irreducible chain);
  Printf.printf "  period       %d\n" (Markov.Chain.period chain);

  (* Stationary distribution, three ways. *)
  let closed = Suffix_chain.stationary_closed_form ~delta ~alpha in
  let solved = Markov.Chain.stationary_linear_solve chain in
  let powered = Markov.Chain.stationary_power_iteration chain in
  Printf.printf "\n  %-18s %-10s %-10s %-10s\n" "state" "Eq. 37" "solve" "power";
  Array.iteri
    (fun i pi ->
      Printf.printf "  %-18s %.8f %.8f %.8f\n"
        (Suffix_chain.state_label (Suffix_chain.state_of_index ~delta i))
        pi solved.(i) powered.(i))
    closed;

  (* Mixing: exact vs spectral estimate. *)
  (match Markov.Chain.mixing_time chain with
  | Some t -> Printf.printf "\n  1/8-mixing time (exact)      %d steps\n" t
  | None -> print_endline "  chain did not mix?!");
  Printf.printf "  SLEM (power iteration)       %.6f\n" (Markov.Spectral.slem chain);
  Printf.printf "  spectral mixing estimate     %.1f steps\n"
    (Markov.Spectral.mixing_time_estimate chain);

  (* The walk itself: occupancy of Deep matches pi(Deep). *)
  let rng = Nakamoto_prob.Rng.create ~seed:1L in
  let deep = Suffix_chain.index_of_state ~delta Suffix_chain.Deep in
  let steps = 200_000 in
  let visits =
    Markov.Chain.occupancy ~rng chain ~start:0 ~steps ~target:(fun s -> s = deep)
  in
  Printf.printf "\n  pi(HN>=D) = %.6f; walk occupancy over %d steps = %.6f\n"
    closed.(deep) steps
    (float_of_int visits /. float_of_int steps);

  (* Absorbing analysis: the 2-behind catch-up race at ratio 0.5. *)
  let race =
    Markov.Chain.create ~size:9
      ~rows:
        (Array.init 9 (fun i ->
             if i = 0 || i = 8 then [ (i, 1.) ]
             else [ (i + 1, 1. /. 3.); (i - 1, 2. /. 3.) ]))
      ()
  in
  let absorbing = Markov.Absorbing.create ~chain:race ~absorbing:[ 0; 8 ] in
  Printf.printf
    "\nrace to +1 from 2 behind (attacker rate half the honest rate):\n";
  Printf.printf
    "  catch-up probability  %.6f (unbounded race would give 0.5^3 = %.6f;\n\
    \                        the give-up boundary 5 below trims it)\n"
    (Markov.Absorbing.absorption_probability absorbing ~from:5 ~into:8)
    (0.5 ** 3.);
  Printf.printf "  expected race length  %.2f block events\n"
    (Markov.Absorbing.expected_steps_to_absorption absorbing ~from:5)
