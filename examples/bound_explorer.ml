(* How fast does the exact Theorem 1 region converge to the neat bound?

   The neat expression 2mu/ln(mu/nu) is the Delta, n -> infinity shape of
   Theorem 1's exact condition abar^(2 Delta) alpha1 >= p nu n.  This sweep
   shows nu_max under the exact condition approaching the neat inversion as
   the system grows — and how far off small systems are, which is what the
   scaled-down simulator actually lives with. *)

open Nakamoto_core
module Table = Nakamoto_numerics.Table

let () =
  let c = 2.0 in
  let neat = Bounds.neat_numax ~c in
  let t =
    Table.create
      ~title:(Printf.sprintf "Theorem 1 exact nu_max at c = %g (neat limit %.6f)" c neat)
      ~columns:[ "n"; "Delta"; "nu_max (Thm 1)"; "neat - exact" ]
  in
  List.iter
    (fun (n, delta) ->
      let exact = Bounds.theorem1_numax ~n ~delta ~c () in
      Table.add_row t
        [
          Table.Float n; Table.Float delta; Table.Float exact;
          Table.Sci (neat -. exact);
        ])
    [
      (10., 4.); (40., 4.); (100., 10.); (1000., 10.); (1e3, 1e3);
      (1e4, 1e4); (1e5, 1e8); (1e5, 1e13);
    ];
  print_string (Table.render t);
  print_newline ();
  (* The same story along c at the paper's scale. *)
  let t2 =
    Table.create ~title:"Exact vs neat along c (n = 1e5, Delta = 1e13)"
      ~columns:[ "c"; "neat"; "Thm1 exact"; "Thm2 exact" ]
  in
  List.iter
    (fun c ->
      let r = Figure1.compute_row ~c () in
      Table.add_row t2
        [
          Table.Float c; Table.Float r.ours_neat; Table.Float r.theorem1_exact;
          Table.Float r.theorem2_exact;
        ])
    [ 0.5; 1.; 2.; 5.; 20.; 100. ];
  print_string (Table.render t2)
