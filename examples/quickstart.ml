(* Quickstart: the public API in thirty lines.

   Question answered: "Bitcoin-like parameters, a 25% adversary — is
   consistency guaranteed, and how much slack is there?" *)

open Nakamoto_core

let () =
  (* 1. Describe the protocol (Table I).  c = 1/(p n Delta) is the expected
     number of network delays per mined block; Bitcoin's ~600 s blocks over
     a ~10 s propagation bound give c = 60. *)
  let params = Params.bitcoin_like in
  Format.printf "parameters: %a@." Params.pp params;

  (* 2. The headline result (Theorem 2): consistency needs c to be just
     slightly greater than 2 mu / ln (mu/nu). *)
  let threshold = Bounds.neat_c_min ~nu:params.nu in
  Format.printf "neat bound: c > %.4f (we have c = %.1f -> %.0fx slack)@."
    threshold (Params.c params)
    (Params.c params /. threshold);

  (* 3. The sharper finite-Delta condition (Theorem 1, Ineq. 10). *)
  Format.printf "Theorem 1 condition holds: %b (log-margin %.4f)@."
    (Theorem1.holds params)
    (Theorem1.margin params);

  (* 4. How much adversary could these parameters actually tolerate? *)
  Format.printf "at c = %.0f the tolerable adversary fraction is %.4f@."
    (Params.c params)
    (Bounds.neat_numax ~c:(Params.c params));

  (* 5. And what do the prior bounds say?  (Pass-Seeman-Shelat 2017.) *)
  Format.printf "PSS consistency tolerates %.4f; PSS attack needs > %.4f@."
    (Bounds.pss_numax_closed ~c:(Params.c params))
    (Bounds.pss_attack_nu ~c:(Params.c params))
