(* The PSS Remark 8.5 attack, realized.

   Runs the private-chain adversary on both sides of the theory:
   - safe zone: c three times our bound 2mu/ln(mu/nu) -> no violations;
   - attack zone: c below the PSS attack threshold -> deep reorgs.

   The absolute numbers are simulator-scale (n = 40, Delta = 4); what must
   match the paper is the dichotomy, which is controlled by c alone. *)

module Sim = Nakamoto_sim
open Nakamoto_core

let report label cfg =
  let r = Sim.Execution.run cfg in
  let cons = Sim.Metrics.check_consistency r in
  Printf.printf "%s\n" label;
  Printf.printf "  c = %.4f, nu = %.2f, %d rounds\n" (Sim.Config.c cfg)
    cfg.Sim.Config.nu cfg.rounds;
  Printf.printf "  honest blocks %d, adversary blocks %d, releases %d\n"
    r.honest_blocks r.adversary_blocks r.adversary_releases;
  Printf.printf "  max reorg depth: %d\n" r.max_reorg_depth;
  Printf.printf "  consistency audit (T=%d): %d violations / %d pairs\n"
    cons.truncate cons.violations cons.pairs_checked;
  Printf.printf "  chain quality: %.3f\n\n" (Sim.Metrics.chain_quality r);
  (r.max_reorg_depth, cons.violations)

let () =
  let nu = 0.30 in
  Printf.printf
    "nu = %.2f: our bound needs c > %.4f; the PSS attack wins for c < %.4f\n\n"
    nu
    (Bounds.neat_c_min ~nu)
    (1. /. ((1. /. nu) -. (1. /. (1. -. nu))));
  let safe_reorg, safe_viol =
    report "SAFE ZONE (c = 3x our bound)" (Sim.Scenarios.safe_zone ~seed:11L ~nu)
  in
  let atk_reorg, atk_viol =
    report "ATTACK ZONE (c = attack threshold / 2)"
      (Sim.Scenarios.attack_zone ~seed:11L ~nu)
  in
  Printf.printf "verdict: safe zone %s (reorg %d, %d violations); \
                 attack zone %s (reorg %d, %d violations)\n"
    (if safe_viol = 0 then "CONSISTENT" else "violated?!")
    safe_reorg safe_viol
    (if atk_viol > 0 || atk_reorg > 6 then "BROKEN as predicted" else "survived?!")
    atk_reorg atk_viol
