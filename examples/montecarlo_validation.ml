(* Monte-Carlo validation of the Markov-chain theory of Section V.

   Three independent confirmations of the convergence-opportunity rate
   abar^(2 Delta) alpha1 (Eq. 44):
     1. the closed form;
     2. the stationary distribution of the explicitly built C_{F||P} chain;
     3. the empirical rate over simulated state-process trials — run
        through the campaign engine, which shards the trials across
        domains and derives every trial's RNG from (seed, cell, trial),
   plus the adversary block rate p nu n (Eq. 27) and the per-round state
   frequencies alpha / alpha1 (Eqs. 7, 9). *)

module Sim = Nakamoto_sim
module Markov = Nakamoto_markov
module Campaign = Nakamoto_campaign
open Nakamoto_core

let () =
  let n = 50. and delta = 3 and p = 0.01 and nu = 0.2 in
  let params = Params.create ~n ~delta:(float_of_int delta) ~p ~nu in
  Format.printf "parameters: %a@." Params.pp params;

  (* 1. Closed form. *)
  let closed = Conv_chain.convergence_rate params in
  Printf.printf "closed form      abar^2D alpha1  = %.8f\n" closed;

  (* 2. Explicit chain stationary probability. *)
  let explicit = Conv_chain.build_explicit ~delta params in
  let pi = Markov.Chain.stationary_linear_solve explicit.chain in
  Printf.printf "explicit C_F||P  pi(HN>=D||H1N^D) = %.8f  (%d states)\n"
    pi.(explicit.convergence_state)
    (Markov.Chain.size explicit.chain);

  (* 3. Simulation, as a one-cell campaign: 8 state-process trials of
     500k rounds each, sharded over however many domains the host
     recommends.  The pooled counts are reproducible bit-for-bit at any
     worker count because each trial's stream is addressed by its
     (seed, cell, trial) path. *)
  let spec =
    {
      Campaign.Spec.default with
      Campaign.Spec.ps = [ p ];
      ns = [ 50 ];
      deltas = [ delta ];
      nus = [ nu ];
      trials_per_cell = 8;
      rounds = 500_000;
      mode = Campaign.Spec.State_process;
      seed = 2024L;
      shard_size = 1;
    }
  in
  let outcome = Campaign.Campaign.run spec in
  let agg = (outcome.Campaign.Campaign.cells.(0)).Campaign.Campaign.aggregate in
  let rounds = Campaign.Aggregate.total_rounds agg in
  let conv = Campaign.Aggregate.convergence_opportunities agg in
  let rate = Campaign.Aggregate.convergence_rate agg in
  Printf.printf "simulated        C/T             = %.8f  (%d rounds)\n" rate
    rounds;
  let lo, hi = Nakamoto_prob.Stats.wilson_interval ~hits:conv ~trials:rounds in
  Printf.printf "                 95%% interval    = [%.8f, %.8f] -> theory %s\n"
    lo hi
    (if closed >= lo && closed <= hi then "INSIDE" else "outside");

  Printf.printf "\nadversary rate:  empirical %.6f vs p nu n = %.6f\n"
    (Campaign.Aggregate.adversary_rate agg)
    (Params.adversary_rate params);
  Printf.printf "H rounds:        empirical %.6f vs alpha   = %.6f\n"
    (Campaign.Aggregate.h_rate agg)
    (Params.alpha params);
  Printf.printf "H1 rounds:       empirical %.6f vs alpha1  = %.6f\n"
    (Campaign.Aggregate.h1_rate agg)
    (Params.alpha1 params);

  (* Expectation identities Eqs. (26)-(27) over the window. *)
  Printf.printf "\nE[C] over T:     %.1f (measured %d)\n"
    (Conv_chain.expected_convergence_count params ~horizon:rounds)
    conv;
  Printf.printf "E[A] over T:     %.1f (measured %d)\n"
    (Conv_chain.expected_adversary_blocks params ~horizon:rounds)
    (Campaign.Aggregate.adversary_blocks agg)
