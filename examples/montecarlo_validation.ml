(* Monte-Carlo validation of the Markov-chain theory of Section V.

   Three independent confirmations of the convergence-opportunity rate
   abar^(2 Delta) alpha1 (Eq. 44):
     1. the closed form;
     2. the stationary distribution of the explicitly built C_{F||P} chain;
     3. the empirical rate over a long simulated state process,
   plus the adversary block rate p nu n (Eq. 27) and the per-round state
   frequencies alpha / alpha1 (Eqs. 7, 9). *)

module Sim = Nakamoto_sim
module Markov = Nakamoto_markov
open Nakamoto_core

let () =
  let n = 50. and delta = 3 and p = 0.01 and nu = 0.2 in
  let params = Params.create ~n ~delta:(float_of_int delta) ~p ~nu in
  Format.printf "parameters: %a@." Params.pp params;

  (* 1. Closed form. *)
  let closed = Conv_chain.convergence_rate params in
  Printf.printf "closed form      abar^2D alpha1  = %.8f\n" closed;

  (* 2. Explicit chain stationary probability. *)
  let explicit = Conv_chain.build_explicit ~delta params in
  let pi = Markov.Chain.stationary_linear_solve explicit.chain in
  Printf.printf "explicit C_F||P  pi(HN>=D||H1N^D) = %.8f  (%d states)\n"
    pi.(explicit.convergence_state)
    (Markov.Chain.size explicit.chain);

  (* 3. Simulation. *)
  let rng = Nakamoto_prob.Rng.create ~seed:2024L in
  let cfg =
    { Sim.State_process.honest = 40; adversarial = 10; p; delta }
  in
  let rounds = 4_000_000 in
  let r = Sim.State_process.run ~rng cfg ~rounds in
  let t = float_of_int rounds in
  let rate = float_of_int r.convergence_opportunities /. t in
  Printf.printf "simulated        C/T             = %.8f  (%d rounds)\n" rate
    rounds;
  let lo, hi =
    Nakamoto_prob.Stats.wilson_interval ~hits:r.convergence_opportunities
      ~trials:rounds
  in
  Printf.printf "                 95%% interval    = [%.8f, %.8f] -> theory %s\n"
    lo hi
    (if closed >= lo && closed <= hi then "INSIDE" else "outside");

  Printf.printf "\nadversary rate:  empirical %.6f vs p nu n = %.6f\n"
    (float_of_int r.adversary_blocks /. t)
    (Params.adversary_rate params);
  Printf.printf "H rounds:        empirical %.6f vs alpha   = %.6f\n"
    (float_of_int r.h_rounds /. t)
    (Params.alpha params);
  Printf.printf "H1 rounds:       empirical %.6f vs alpha1  = %.6f\n"
    (float_of_int r.h1_rounds /. t)
    (Params.alpha1 params);

  (* Expectation identities Eqs. (26)-(27) over the window. *)
  Printf.printf "\nE[C] over T:     %.1f (measured %d)\n"
    (Conv_chain.expected_convergence_count params ~horizon:rounds)
    r.convergence_opportunities;
  Printf.printf "E[A] over T:     %.1f (measured %d)\n"
    (Conv_chain.expected_adversary_blocks params ~horizon:rounds)
    r.adversary_blocks
