(* Benchmark and regeneration harness.

   Part 1 regenerates every table and figure of the paper (and the
   extension experiments documented in DESIGN.md), printing the same
   rows/series the paper reports.  Part 2 times the generators and the
   substrate hot paths with Bechamel — one Test.make per artifact. *)

module Core = Nakamoto_core
module Sim = Nakamoto_sim
module Markov = Nakamoto_markov
module Prob = Nakamoto_prob
module Campaign = Nakamoto_campaign
module Table = Nakamoto_numerics.Table

let section name = Printf.printf "\n########## %s ##########\n\n" name

(* With `--csv DIR` on the command line, every table is also written to
   DIR/<slug>.csv for external plotting. *)
let csv_dir =
  let rec scan = function
    | "--csv" :: dir :: _ -> Some dir
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let table_counter = ref 0

let print_table t =
  print_string (Table.render t);
  match csv_dir with
  | None -> ()
  | Some dir ->
    incr table_counter;
    let path = Filename.concat dir (Printf.sprintf "table_%02d.csv" !table_counter) in
    Table.save_csv t ~path;
    Printf.printf "(csv: %s)\n" path

(* ------------------------------------------------------------------ *)
(* FIG1: Figure 1 series                                               *)
(* ------------------------------------------------------------------ *)

let regen_fig1 () =
  section "FIG1: Figure 1 - tolerable nu vs c (n=1e5, Delta=1e13)";
  let rows = Core.Figure1.series ~c_grid:(Core.Figure1.default_c_grid ()) () in
  print_table (Core.Figure1.to_table rows);
  print_newline ();
  print_string (Core.Figure1.to_plot rows);
  Printf.printf "shape invariants (ours >= PSS, attack >= ours, monotone): %b\n"
    (Core.Figure1.shape_invariants_hold rows);
  (* Interval-arithmetic certification: prove that every plotted point of
     the magenta curve brackets the true nu_max to within 1e-9. *)
  let certified =
    List.length
      (List.filter
         (fun (r : Core.Figure1.row) ->
           Core.Certify.certify_neat_numax ~c:r.c () <> None)
         rows)
  in
  Printf.printf
    "ours-curve points certified to +-1e-9 by interval arithmetic: %d / %d\n"
    certified (List.length rows)

(* ------------------------------------------------------------------ *)
(* FIG2: suffix chain census + DOT                                     *)
(* ------------------------------------------------------------------ *)

let regen_fig2 () =
  section "FIG2: Figure 2 - suffix chain C_F structure";
  let censuses =
    List.map (fun d -> Core.Figure2.census ~delta:d ~alpha:0.2) [ 2; 3; 4; 8; 16 ]
  in
  print_table (Core.Figure2.to_table censuses);
  Printf.printf "\nDOT rendering for Delta = 2:\n%s"
    (Core.Figure2.dot ~delta:2 ~alpha:0.2)

(* ------------------------------------------------------------------ *)
(* TAB1: Table I with values                                           *)
(* ------------------------------------------------------------------ *)

let regen_tab1 () =
  section "TAB1: Table I - notation with computed values";
  let fig1_point = Core.Params.figure1_point ~nu:0.25 ~c:3. in
  print_table (Core.Table1.for_params fig1_point);
  Printf.printf "identities hold: %b\n\n" (Core.Table1.identities_hold fig1_point);
  print_table (Core.Table1.for_params Core.Params.bitcoin_like);
  Printf.printf "identities hold: %b\n"
    (Core.Table1.identities_hold Core.Params.bitcoin_like)

(* ------------------------------------------------------------------ *)
(* RMK1: Remark 1 regimes                                              *)
(* ------------------------------------------------------------------ *)

let regen_rmk1 () =
  section "RMK1: Remark 1 - (delta1, delta2) regimes at Delta = 1e13";
  let t =
    Table.create
      ~title:
        "Remark 1 (paper: [1e-63, 0.5-1e-7] x 1+5e-5; [1e-18, 0.5-1e-9] x 1+2e-3)"
      ~columns:[ "delta1"; "delta2"; "nu lower"; "1/2 - nu upper"; "inflation - 1" ]
  in
  List.iter
    (fun (r : Core.Theorem2.regime) ->
      Table.add_row t
        [
          Table.Float r.delta1; Table.Float r.delta2; Table.Log10 r.log_nu_lo;
          Table.Sci r.half_minus_nu_hi; Table.Sci (r.inflation -. 1.);
        ])
    (Core.Theorem2.remark1_rows ());
  print_table t

(* ------------------------------------------------------------------ *)
(* EQ37: closed form vs numeric stationary (ablation #2)               *)
(* ------------------------------------------------------------------ *)

let regen_eq37 () =
  section "EQ37: stationary distribution of C_F - closed form vs solves";
  let t =
    Table.create ~title:"Eq. 37 vs linear solve vs power iteration"
      ~columns:[ "Delta"; "alpha"; "|closed-solve|"; "|closed-power|"; "sum-1" ]
  in
  List.iter
    (fun (delta, alpha) ->
      let chain = Core.Suffix_chain.build ~delta ~alpha in
      let closed = Core.Suffix_chain.stationary_closed_form ~delta ~alpha in
      let solve = Markov.Chain.stationary_linear_solve chain in
      let power = Markov.Chain.stationary_power_iteration chain in
      let err a b =
        let m = ref 0. in
        Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
        !m
      in
      Table.add_row t
        [
          Table.Int delta; Table.Float alpha; Table.Sci (err closed solve);
          Table.Sci (err closed power);
          Table.Sci (Array.fold_left ( +. ) (-1.) closed);
        ])
    [ (2, 0.5); (5, 0.23); (10, 0.04); (50, 0.1); (200, 0.02) ];
  print_table t

(* ------------------------------------------------------------------ *)
(* EQ44: convergence-opportunity rate, three ways                      *)
(* ------------------------------------------------------------------ *)

let regen_eq44 () =
  section
    "EQ44: pi(HN>=D || H1 N^D) = abar^2D alpha1 - theory vs chain vs simulation";
  let t =
    Table.create ~title:"Eq. 44 cross-validation (1e6 simulated rounds per row)"
      ~columns:
        [ "Delta"; "closed form"; "explicit chain"; "Monte Carlo"; "MC 95% lo";
          "MC 95% hi"; "theory inside CI" ]
  in
  List.iter
    (fun delta ->
      let params =
        Core.Params.create ~n:50. ~delta:(float_of_int delta) ~p:0.01 ~nu:0.2
      in
      let closed = Core.Conv_chain.convergence_rate params in
      let explicit = Core.Conv_chain.build_explicit ~delta params in
      let pi = Markov.Chain.stationary_linear_solve explicit.chain in
      let rounds = 1_000_000 in
      let run =
        Sim.State_process.run
          ~rng:(Prob.Rng.create ~seed:(Int64.of_int (1000 + delta)))
          { Sim.State_process.honest = 40; adversarial = 10; p = 0.01; delta }
          ~rounds
      in
      let lo, hi =
        Prob.Stats.wilson_interval ~hits:run.convergence_opportunities
          ~trials:rounds
      in
      Table.add_row t
        [
          Table.Int delta; Table.Sci closed;
          Table.Sci pi.(explicit.convergence_state);
          Table.Sci
            (float_of_int run.convergence_opportunities /. float_of_int rounds);
          Table.Sci lo; Table.Sci hi;
          Table.Text
            (if closed >= lo -. 1e-4 && closed <= hi +. 1e-4 then "yes" else "NO");
        ])
    [ 1; 2; 3 ];
  print_table t

(* ------------------------------------------------------------------ *)
(* THM1: exact region converging to the neat bound (ablation #4)       *)
(* ------------------------------------------------------------------ *)

let regen_thm1 () =
  section "THM1: exact Theorem 1 nu_max -> neat bound as n, Delta grow";
  let c = 2.0 in
  let neat = Core.Bounds.neat_numax ~c in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "nu_max under Ineq. 10 at c = %g (neat limit %.6f)" c neat)
      ~columns:[ "n"; "Delta"; "Thm1 exact"; "Thm2 exact"; "neat - Thm1" ]
  in
  List.iter
    (fun (n, delta) ->
      let thm1 = Core.Bounds.theorem1_numax ~n ~delta ~c () in
      let thm2 = Core.Bounds.theorem2_numax ~delta ~eps2:1e-9 ~c in
      Table.add_row t
        [
          Table.Float n; Table.Float delta; Table.Float thm1; Table.Float thm2;
          Table.Sci (neat -. thm1);
        ])
    [ (10., 4.); (40., 4.); (100., 10.); (1e3, 1e3); (1e4, 1e4); (1e5, 1e13) ];
  print_table t;
  print_newline ();
  (* Designer view of the same curve: the marginal value of c. *)
  print_table
    (Core.Sensitivity.marginal_value_table
       ~c_grid:[ 0.5; 1.; 2.; 4.; 8.; 16.; 64. ])

(* ------------------------------------------------------------------ *)
(* LEM: the implication chain audit                                    *)
(* ------------------------------------------------------------------ *)

let regen_lem () =
  section "LEM: Lemmas 2-8 implication chain (52)-(59)";
  let t =
    Table.create ~title:"verify_chain at points satisfying Ineqs. 50-51"
      ~columns:[ "nu"; "Delta"; "n"; "eps1"; "eps2"; "c"; "all steps hold" ]
  in
  List.iter
    (fun (nu, delta, n, eps1, eps2) ->
      let c = Core.Bounds.theorem2_c_min ~nu ~delta ~eps1 ~eps2 *. 1.000001 in
      let p = Core.Params.of_c ~n ~delta ~nu ~c in
      let r = Core.Lemmas.verify_chain ~eps1 ~eps2 p in
      Table.add_row t
        [
          Table.Float nu; Table.Float delta; Table.Float n; Table.Float eps1;
          Table.Float eps2; Table.Float c;
          Table.Text (string_of_bool r.all_hold);
        ])
    [
      (0.25, 1e13, 1e5, 0.5, 0.1); (0.4, 1e2, 1e3, 0.3, 0.01);
      (0.1, 1e6, 1e5, 0.7, 1.0); (0.49, 1e4, 1e6, 0.2, 0.5);
      (0.01, 10., 100., 0.9, 0.001);
    ];
  print_table t

(* ------------------------------------------------------------------ *)
(* ATK: simulated consistency on both sides of the theory              *)
(* ------------------------------------------------------------------ *)

let scenario_row name cfg =
  let r = Sim.Execution.run cfg in
  let cons = Sim.Metrics.check_consistency r in
  let growth = Sim.Metrics.chain_growth r in
  [
    Table.Text name; Table.Float (Sim.Config.c cfg);
    Table.Float cfg.Sim.Config.nu; Table.Int r.honest_blocks;
    Table.Int r.adversary_blocks; Table.Int r.convergence_opportunities;
    Table.Int r.max_reorg_depth;
    Table.Text (Printf.sprintf "%d/%d" cons.violations cons.pairs_checked);
    Table.Float growth.growth_rate;
    Table.Float (Sim.Metrics.chain_quality r);
  ]

let regen_atk () =
  section "ATK: the PSS Remark 8.5 attack, simulated (Delta-delay protocol)";
  let t =
    Table.create
      ~title:
        "Consistency above vs below the bounds (expect: violations only in the attack zone)"
      ~columns:
        [ "scenario"; "c"; "nu"; "honest"; "adv"; "conv opps"; "max reorg";
          "violations(T)"; "growth"; "quality" ]
  in
  Table.add_row t (scenario_row "honest" (Sim.Scenarios.honest_baseline ~seed:2025L));
  Table.add_row t
    (scenario_row "safe nu=.25" (Sim.Scenarios.safe_zone ~seed:2025L ~nu:0.25));
  Table.add_row t
    (scenario_row "safe nu=.33" (Sim.Scenarios.safe_zone ~seed:2025L ~nu:0.33));
  Table.add_row t
    (scenario_row "attack nu=.30" (Sim.Scenarios.attack_zone ~seed:2025L ~nu:0.30));
  Table.add_row t
    (scenario_row "attack nu=.40" (Sim.Scenarios.attack_zone ~seed:2025L ~nu:0.40));
  Table.add_row t (scenario_row "split world" (Sim.Scenarios.split_world ~seed:2025L));
  print_table t

(* ------------------------------------------------------------------ *)
(* PHASE: simulated (c, nu) phase diagram vs the analytic regions      *)
(* ------------------------------------------------------------------ *)

let regen_phase () =
  section "PHASE: deep-reorg successes across the (c, nu) plane vs analytic regions";
  let cs = [ 0.25; 0.5; 1.; 2.; 4. ] in
  let nus = [ 0.15; 0.25; 0.35; 0.45 ] in
  let t =
    Table.create
      ~title:
        "cells: successful 12-deep reorgs in 6000 rounds | analytic region \
         (SAFE = above 2mu/ln(mu/nu), ATTACK = below the PSS attack line, \
         GAP between).  Consistency is exponential in T, so SAFE cells may \
         show a stray success near the boundary but never a stream of them."
      ~columns:("nu \\ c" :: List.map (Printf.sprintf "%g") cs)
  in
  List.iter
    (fun nu ->
      let cells =
        List.map
          (fun c ->
            let cfg = Sim.Scenarios.at_c ~seed:4242L ~nu ~c ~rounds:6000 in
            let r = Sim.Execution.run cfg in
            let region =
              if c > Core.Bounds.neat_c_min ~nu then "SAFE"
              else if nu > Core.Bounds.pss_attack_nu ~c then "ATTACK"
              else "GAP"
            in
            Table.Text (Printf.sprintf "%d | %s" r.adversary_releases region))
          cs
      in
      Table.add_row t (Table.Float nu :: cells))
    nus;
  print_table t

(* ------------------------------------------------------------------ *)
(* GAP: probing the open region with every implemented adversary       *)
(* ------------------------------------------------------------------ *)

let regen_gap () =
  section
    "GAP: probing the region between our bound and the PSS attack line";
  (* The paper's conclusion names this gap as the open question.  We pit
     every implemented adversary against points inside it (each with its
     own worst delay policy) and report the deepest consistency damage
     achieved - an empirical lower bound on what the region tolerates. *)
  let t =
    Table.create
      ~title:
        "max reorg depth / releases over 8000 rounds per strategy (nu, c inside the gap)"
      ~columns:
        [ "nu"; "c"; "private-chain"; "balance"; "selfish+delay";
          "sensitivity d nu/d c" ]
  in
  List.iter
    (fun (nu, c) ->
      let run strategy delay_override tie_break =
        let cfg =
          Sim.Config.with_c
            {
              Sim.Config.default with
              nu;
              rounds = 8000;
              seed = 1234L;
              strategy;
              truncate = 6;
              snapshot_interval = 400;
              delay_override;
              tie_break;
            }
            ~c
        in
        let r = Sim.Execution.run cfg in
        Printf.sprintf "%d / %d" r.max_reorg_depth r.adversary_releases
      in
      let boundary = Nakamoto_chain.Block_tree.Prefer_honest in
      Table.add_row t
        [
          Table.Float nu; Table.Float c;
          Table.Text
            (run (Sim.Adversary.Private_chain { reorg_target = 8 }) None boundary);
          Table.Text
            (run (Sim.Adversary.Balance { group_boundary = 15 }) None boundary);
          Table.Text
            (run Sim.Adversary.Selfish_mining
               (Some (Nakamoto_net.Network.Fixed 2))
               Nakamoto_chain.Block_tree.First_seen);
          Table.Float (Core.Sensitivity.numax_slope ~c);
        ])
    [ (0.2, 0.45); (0.3, 1.2); (0.4, 2.2) ];
  print_table t;
  print_endline
    "(cells: deepest reorg / successful deep releases; the gap is where \
     damage is real but bounded - neither the safe zone's silence nor the \
     attack zone's collapse)"

(* ------------------------------------------------------------------ *)
(* SCALE: behaviour depends on c, not on n and Delta separately        *)
(* ------------------------------------------------------------------ *)

let regen_scale () =
  section "SCALE: c-invariance - the substitution argument of DESIGN.md, measured";
  (* Fix c on both sides of the theory and vary (n, Delta) by an order of
     magnitude each: the attack's success rate and the safe zone's
     cleanliness must depend on c alone (up to small-system corrections). *)
  let t =
    Table.create
      ~title:
        "deep-reorg successes per 4000 rounds at fixed c across system scales"
      ~columns:
        [ "n"; "Delta"; "attack c=0.26 nu=.3"; "safe c=4.1 nu=.25" ]
  in
  List.iter
    (fun (n, delta) ->
      let run ~nu ~c =
        let cfg =
          Sim.Config.with_c
            {
              Sim.Config.default with
              n;
              delta;
              nu;
              rounds = 4000;
              seed = 31L;
              strategy = Sim.Adversary.Private_chain { reorg_target = 12 };
              truncate = 6;
              snapshot_interval = 400;
            }
            ~c
        in
        (Sim.Execution.run cfg).adversary_releases
      in
      Table.add_row t
        [
          Table.Int n; Table.Int delta;
          Table.Int (run ~nu:0.3 ~c:0.2625);
          Table.Int (run ~nu:0.25 ~c:4.1);
        ])
    [ (20, 2); (40, 4); (100, 8); (200, 16) ];
  print_table t;
  print_endline
    "(attack-zone success counts stay an order of magnitude above the safe \
     zone's at every scale: c is the governing dimension)"

(* ------------------------------------------------------------------ *)
(* CONC: concentration (Ineqs. 19-20) empirically vs bounds            *)
(* ------------------------------------------------------------------ *)

let regen_conc () =
  section "CONC: concentration of C and A over windows (Ineqs. 19-20, 47, 49)";
  let cfg = { Sim.State_process.honest = 40; adversarial = 10; p = 0.01; delta = 3 } in
  let params = Core.Params.create ~n:50. ~delta:3. ~p:0.01 ~nu:0.2 in
  let t =
    Table.create
      ~title:"Empirical tail frequencies over 400 windows (delta2 = delta3 = 0.2)"
      ~columns:
        [ "window T"; "P[C <= 0.8 E C] emp"; "P[A >= 1.2 E A] emp";
          "Ineq.49 bound on A-tail" ]
  in
  List.iter
    (fun window_length ->
      let windows = 400 in
      let w =
        Sim.State_process.window_counts
          ~rng:(Prob.Rng.create ~seed:99L)
          cfg ~windows ~window_length
      in
      let e_c =
        Core.Conv_chain.expected_convergence_count params ~horizon:window_length
      in
      let e_a =
        Core.Conv_chain.expected_adversary_blocks params ~horizon:window_length
      in
      let frac pred =
        float_of_int
          (Array.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 w)
        /. float_of_int windows
      in
      let c_tail = frac (fun (c, _) -> float_of_int c <= 0.8 *. e_c) in
      let a_tail = frac (fun (_, a) -> float_of_int a >= 1.2 *. e_a) in
      let a_bound =
        Prob.Tail_bounds.binomial_upper_tail
          (Prob.Binomial.create ~trials:(window_length * 10) ~p:0.01)
          ~delta:0.2
      in
      Table.add_row t
        [
          Table.Int window_length; Table.Float c_tail; Table.Float a_tail;
          Table.Sci a_bound;
        ])
    [ 200; 800; 3200; 12800 ];
  print_table t;
  print_endline
    "(both empirical tails must decay toward 0 as T grows; the A-tail must stay below the bound)"

(* ------------------------------------------------------------------ *)
(* DECAY: P[reorg deeper than T] decays exponentially in T             *)
(* ------------------------------------------------------------------ *)

let regen_decay () =
  section "DECAY: consistency failure probability vs T (Definition 1's 'overwhelming in T')";
  (* Many independent medium-length executions just above the bound; the
     fraction with a reorg deeper than T must fall off exponentially. *)
  let nu = 0.3 in
  let runs = 60 in
  let cfg seed =
    {
      (Sim.Scenarios.at_c ~seed ~nu
         ~c:(1.2 *. Core.Bounds.neat_c_min ~nu)
         ~rounds:3000)
      with
      Sim.Config.strategy = Sim.Adversary.Private_chain { reorg_target = 1 };
    }
  in
  let depths =
    List.init runs (fun i ->
        (Sim.Execution.run (cfg (Int64.of_int (7000 + i)))).max_reorg_depth)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "fraction of %d runs (3000 rounds, nu=%.2f, c=1.2x bound) with max reorg > T"
           runs nu)
      ~columns:[ "T"; "P[max reorg > T] empirical"; "runs exceeding" ]
  in
  List.iter
    (fun threshold ->
      let exceeding = List.length (List.filter (fun d -> d > threshold) depths) in
      Table.add_row t
        [
          Table.Int threshold;
          Table.Float (float_of_int exceeding /. float_of_int runs);
          Table.Int exceeding;
        ])
    [ 0; 1; 2; 3; 4; 6; 8; 12 ];
  print_table t;
  print_endline "(the tail must fall toward 0 as T grows - exponentially, per Definition 1)"

(* ------------------------------------------------------------------ *)
(* EXT: chain growth and chain quality (paper's future work)           *)
(* ------------------------------------------------------------------ *)

let regen_ext () =
  section "EXT: chain growth & quality across c (extension; paper SS II future work)";
  let t =
    Table.create
      ~title:
        "Idle adversary, n = 40, Delta = 4: growth under instant vs worst-case \
         (Delta) delays against the alpha/(1+Delta alpha) lower bound"
      ~columns:
        [ "c"; "growth (delay 1)"; "growth (delay D)"; "lower bound";
          "upper bound (alpha)"; "quality" ]
  in
  List.iter
    (fun c ->
      let base =
        Sim.Config.with_c
          { Sim.Config.default with rounds = 8000; seed = 7L; nu = 0.25 }
          ~c
      in
      let run cfg = (Sim.Metrics.chain_growth (Sim.Execution.run cfg)).growth_rate in
      let fast = run base in
      let slow =
        run { base with delay_override = Some Nakamoto_net.Network.Maximal }
      in
      let p = Core.Params.of_sim_config base in
      Table.add_row t
        [
          Table.Float c; Table.Float fast; Table.Float slow;
          Table.Float (Core.Growth_quality.growth_rate_lower_bound p);
          Table.Float (Core.Growth_quality.growth_rate_upper_bound p);
          Table.Float (Sim.Metrics.chain_quality (Sim.Execution.run base));
        ])
    [ 0.5; 1.; 2.; 4.; 8. ];
  print_table t;
  print_endline
    "(instant delivery tracks the alpha ceiling; Delta-delayed delivery drops \
     toward the alpha/(1+Delta alpha) floor — the folklore bound is about \
     worst-case delays)"

(* ------------------------------------------------------------------ *)
(* EXT2: selfish mining revenue (chain quality under withholding)      *)
(* ------------------------------------------------------------------ *)

let regen_ext2 () =
  section "EXT2: Eyal-Sirer selfish mining - revenue vs honest share";
  let t =
    Table.create
      ~title:
        "Selfish revenue: gamma = 0 (honest-preferring ties, instant honest \
         propagation) vs delay-advantaged gamma ~ 1 (first-seen ties, honest \
         broadcasts held one extra round)"
      ~columns:
        [ "nu"; "revenue (gamma=0)"; "revenue (gamma~1)"; "honest share";
          "profitable g=0"; "profitable g~1" ]
  in
  List.iter
    (fun nu ->
      let revenue tie_break delay_override =
        let cfg =
          { (Sim.Scenarios.selfish ~seed:5L ~nu) with tie_break; delay_override }
        in
        1. -. Sim.Metrics.chain_quality (Sim.Execution.run cfg)
      in
      (* gamma = 0: deterministic honest-preferring ties, instant honest
         propagation - the attacker loses every race. *)
      let g0 = revenue Nakamoto_chain.Block_tree.Prefer_honest None in
      (* gamma ~ 1: the attacker uses its delay control to hold honest
         broadcasts one extra round (releases, sent point-to-point, still
         travel in one), and first-seen ties keep miners on whichever
         block landed first - the attacker's. *)
      let fs =
        revenue Nakamoto_chain.Block_tree.First_seen
          (Some (Nakamoto_net.Network.Fixed 2))
      in
      Table.add_row t
        [
          Table.Float nu; Table.Float g0; Table.Float fs; Table.Float nu;
          Table.Text (string_of_bool (g0 > nu));
          Table.Text (string_of_bool (fs > nu));
        ])
    [ 0.1; 0.2; 0.3; 0.35; 0.4; 0.45 ];
  print_table t

(* ------------------------------------------------------------------ *)
(* CONF: confirmation-depth calculator (practitioner extension)        *)
(* ------------------------------------------------------------------ *)

let regen_conf () =
  section "CONF: settlement depths from the paper's conservative rates";
  let assessments =
    List.map
      (fun nu -> Core.Confirmation.assess (Core.Params.of_c ~n:1e5 ~delta:10. ~nu ~c:6.))
      [ 0.05; 0.1; 0.2; 0.3 ]
  in
  print_table (Core.Confirmation.to_table assessments);
  (* Cross-check the race analysis three ways at one point. *)
  let closed =
    Core.Confirmation.overtake_probability ~honest_rate:0.1 ~adversary_rate:0.04
      ~deficit:3
  in
  let absorbing =
    Core.Confirmation.overtake_probability_bounded ~honest_rate:0.1
      ~adversary_rate:0.04 ~deficit:3 ~give_up_behind:60
  in
  Printf.printf
    "\novertake from 3 behind at rates 0.04/0.1: closed %.8f, absorbing-chain %.8f\n"
    closed absorbing

(* ------------------------------------------------------------------ *)
(* CONT: the continuous-time limit and the neat bound                  *)
(* ------------------------------------------------------------------ *)

let regen_cont () =
  section "CONT: the Poisson limit - where the neat bound's closed form lives";
  (* 1. Discrete -> continuous convergence at fixed c. *)
  let c = 2.5 and mu = 0.75 and n = 1e5 in
  let continuous = mu /. c *. exp (-2. *. mu /. c) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Delta x (discrete rate) -> continuous rate mu/c e^(-2mu/c) = %.6f at c = %g"
           continuous c)
      ~columns:[ "Delta (rounds)"; "Delta x abar^2D alpha1"; "rel. gap" ]
  in
  List.iter
    (fun delta_rounds ->
      let p = 1. /. (c *. n *. float_of_int delta_rounds) in
      let discrete =
        Sim.Poisson.discrete_rate_per_time ~p ~n ~mu ~delta_rounds
        *. float_of_int delta_rounds
      in
      Table.add_row t
        [
          Table.Int delta_rounds; Table.Float discrete;
          Table.Sci (Float.abs (discrete -. continuous) /. continuous);
        ])
    [ 4; 16; 64; 1024; 100_000 ];
  print_table t;
  (* 2. Simulated continuous process vs its closed form, and the identity
     with the neat bound. *)
  let cfg = { Sim.Poisson.lambda = 1.; mu = 0.75; delta = 1. /. c } in
  let r =
    Sim.Poisson.simulate ~rng:(Prob.Rng.create ~seed:77L) cfg ~horizon:500_000.
  in
  Printf.printf
    "\nPoisson simulation (lambda=1, mu=0.75, delta=1/c): isolated rate %.6f \
     vs closed form %.6f; margin sign matches the neat bound: %b\n"
    (float_of_int r.isolated_honest /. r.horizon)
    (Sim.Poisson.isolated_rate cfg)
    (Sim.Poisson.neat_bound_equivalent cfg)

(* ------------------------------------------------------------------ *)
(* ABL: ablations #1 and #3                                            *)
(* ------------------------------------------------------------------ *)

let regen_abl () =
  section "ABL: ablations - log domain necessity & the Kiffer [6] accounting error";
  let t =
    Table.create
      ~title:"#1: linear vs log evaluation of abar^2D alpha1 (nu=0.25, c=3)"
      ~columns:[ "Delta"; "linear"; "via logs"; "verdict" ]
  in
  List.iter
    (fun delta ->
      let p = Core.Params.of_c ~n:1e5 ~delta ~nu:0.25 ~c:3. in
      let linear = (Core.Params.abar p ** (2. *. delta)) *. Core.Params.alpha1 p in
      let log_form = exp (Core.Conv_chain.log_convergence_rate p) in
      Table.add_row t
        [
          Table.Float delta; Table.Sci linear; Table.Sci log_form;
          Table.Text
            (if linear = 0. && log_form > 0. then "LINEAR UNDERFLOW"
             else if
               log_form > 0. && Float.abs (linear -. log_form) /. log_form > 1e-6
             then "drift"
             else "agree");
        ])
    [ 1e2; 1e6; 1e10; 1e13 ];
  print_table t;
  print_newline ();
  let t2 =
    Table.create
      ~title:
        "#3: corrected (alpha1) vs flawed (p mu n) accounting in Ineq. 10 margins"
      ~columns:[ "nu"; "c"; "correct margin"; "flawed margin"; "flawed overstates" ]
  in
  List.iter
    (fun (nu, c) ->
      let p = Core.Params.of_c ~n:100. ~delta:10. ~nu ~c in
      let correct = Core.Bounds.theorem1_margin p in
      let flawed = Core.Bounds.flawed_theorem1_margin p in
      Table.add_row t2
        [
          Table.Float nu; Table.Float c; Table.Float correct; Table.Float flawed;
          Table.Text (string_of_bool (flawed > correct));
        ])
    [ (0.25, 1.5); (0.3, 1.2); (0.4, 2.5); (0.45, 5.) ];
  print_table t2;
  print_newline ();
  (* The structural half of the paper's [6] critique: a two-state chain
     cannot reproduce the suffix structure. *)
  print_table
    (Core.Kiffer_comparison.to_table
       [
         Core.Params.create ~n:50. ~delta:3. ~p:0.01 ~nu:0.2;
         Core.Params.create ~n:100. ~delta:5. ~p:0.002 ~nu:0.25;
         Core.Params.create ~n:40. ~delta:4. ~p:0.005 ~nu:0.3;
       ])

(* ------------------------------------------------------------------ *)
(* MCSCALE: campaign engine multicore scaling                          *)
(* ------------------------------------------------------------------ *)

let regen_mcscale () =
  section "MCSCALE: Monte Carlo campaign throughput, 1 -> N domains";
  (* The reference grid: one safe and one attacked cell, full-protocol
     trials, shard size 1 so the work queue has enough grain to spread.
     Identical results at every jobs value is part of the engine's
     contract, so the same spec is reused and checked across rows. *)
  let spec =
    {
      Campaign.Spec.default with
      Campaign.Spec.ps = [ 0.005 ];
      ns = [ 40 ];
      deltas = [ 4 ];
      nus = [ 0.25; 0.4 ];
      trials_per_cell = 12;
      rounds = 1_000;
      seed = 11L;
      shard_size = 1;
    }
  in
  let cores = Domain.recommended_domain_count () in
  let trials = Campaign.Spec.trial_count spec in
  let reference = ref None in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "reference grid: %d full-protocol trials x %d rounds (host \
            reports %d core(s))"
           trials spec.Campaign.Spec.rounds cores)
      ~columns:[ "jobs"; "seconds"; "trials/s"; "speedup vs 1"; "identical" ]
  in
  let base_rate = ref 0. in
  List.iter
    (fun jobs ->
      let outcome = Campaign.Campaign.run ~jobs spec in
      let dt = outcome.Campaign.Campaign.elapsed in
      let rate = if dt > 0. then float_of_int trials /. dt else infinity in
      if jobs = 1 then base_rate := rate;
      let fingerprint =
        Array.map
          (fun (r : Campaign.Campaign.cell_result) ->
            Campaign.Aggregate.snapshot r.Campaign.Campaign.aggregate)
          outcome.Campaign.Campaign.cells
      in
      let identical =
        match !reference with
        | None ->
          reference := Some fingerprint;
          "(ref)"
        | Some r -> string_of_bool (r = fingerprint)
      in
      Table.add_row t
        [
          Table.Int jobs; Table.Float dt; Table.Float rate;
          Table.Float (if !base_rate > 0. then rate /. !base_rate else nan);
          Table.Text identical;
        ])
    [ 1; 2; 4 ];
  print_table t;
  if cores < 4 then
    Printf.printf
      "(host has %d core(s): speedup > 2x at 4 domains requires >= 4 cores; \
       rows above still verify bit-identical results at every jobs value)\n"
      cores

(* ------------------------------------------------------------------ *)
(* EXECSCALE: full-execution throughput at paper-scale n               *)
(* ------------------------------------------------------------------ *)

(* One row per (n, mining mode): rounds/second of Execution.run under a
   Fixed-delay policy with c held at 2.5 (so p scales as 1/n and the block
   rate per round is constant across n).  Exact mode walks every miner
   every round — O(n) — while Aggregate draws per-round counts and rides
   the Δ-ring, so its row should stay flat as n grows; Skip only touches
   event rounds, so its [processed_events] column collapses below the
   simulated horizon.  A second cell group runs at the paper's sparse
   operating point (c = 4, Delta = 64: most rounds carry nothing at all),
   where skipping empty rounds is the entire cost. *)

type execscale_cell = {
  es_n : int;
  es_mode : Sim.Config.mining_mode;
  es_c : float;
  es_delta : int;
  es_rounds : int;  (** simulated horizon *)
  es_events : int;  (** rounds the executor actually processed *)
  es_dt : float;
  es_rate : float;  (** simulated rounds per second *)
  es_blocks : int;
}

let mode_name = function
  | Sim.Config.Exact -> "exact"
  | Sim.Config.Aggregate -> "aggregate"
  | Sim.Config.Skip -> "skip"

let execscale_config ~n ~rounds ~mode ~c ~delta =
  Sim.Config.with_c
    {
      Sim.Config.default with
      n;
      nu = 0.25;
      delta;
      rounds;
      seed = 17L;
      snapshot_interval = max 1 rounds;
      delay_override = Some (Nakamoto_net.Network.Fixed 2);
      mining_mode = mode;
    }
    ~c

let time_run cfg =
  let t0 = Unix.gettimeofday () in
  let r = Sim.Execution.run cfg in
  let dt = Unix.gettimeofday () -. t0 in
  (r, dt)

let measure_cell ~n ~mode ~rounds ~c ~delta =
  let cfg = execscale_config ~n ~rounds ~mode ~c ~delta in
  let r, dt = time_run cfg in
  {
    es_n = n;
    es_mode = mode;
    es_c = c;
    es_delta = delta;
    es_rounds = rounds;
    es_events = r.Sim.Execution.processed_rounds;
    es_dt = dt;
    es_rate = (if dt > 0. then float_of_int rounds /. dt else infinity);
    es_blocks = r.Sim.Execution.honest_blocks;
  }

(* Measured cells, also serialized to BENCH_EXECSCALE.json. *)
let execscale_cells ~sizes =
  List.concat_map
    (fun n ->
      (* Equal-work horizon for the exact rows, floor of 50 rounds so the
         aggregate timer has something to chew on. *)
      let rounds = max 50 (200_000 / n) in
      List.map
        (fun mode -> measure_cell ~n ~mode ~rounds ~c:2.5 ~delta:4)
        [ Sim.Config.Exact; Sim.Config.Aggregate; Sim.Config.Skip ])
    sizes

(* The sparse paper-scale group: c = 1/(p n Delta) = 8 with Delta = 256
   puts the per-round success probability near 1/2048 — block-bearing
   rounds thousands of rounds apart, exactly the regime Skip exists for.
   (Sparsity is what matters: both executors pay the same irreducible
   price per block mined — miner materialization and fan-out delivery —
   so Skip's advantage is the empty-round overhead divided by that
   shared event cost.)  Exact mode is omitted: at these n it would
   dominate the wall clock without informing the Aggregate-vs-Skip
   comparison. *)
let paperscale_cells ~sizes ~rounds =
  List.concat_map
    (fun n ->
      List.map
        (fun mode -> measure_cell ~n ~mode ~rounds ~c:8.0 ~delta:256)
        [ Sim.Config.Aggregate; Sim.Config.Skip ])
    sizes

let execscale_json cells ~path =
  let oc = open_out path in
  let row cell =
    Printf.sprintf
      "  {\"n\": %d, \"mode\": \"%s\", \"c\": %.2f, \"delta\": %d, \
       \"simulated_rounds\": %d, \"processed_events\": %d, \
       \"seconds\": %.6f, \"rounds_per_sec\": %.1f, \"honest_blocks\": %d}"
      cell.es_n (mode_name cell.es_mode) cell.es_c cell.es_delta
      cell.es_rounds cell.es_events cell.es_dt cell.es_rate cell.es_blocks
  in
  Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" (List.map row cells));
  close_out oc;
  Printf.printf "(json: %s)\n" path

let execscale_table ~title cells =
  let t =
    Table.create ~title
      ~columns:
        [
          "n";
          "mode";
          "sim rounds";
          "events";
          "seconds";
          "rounds/s";
          "speedup";
        ]
  in
  (* Speedup is relative to the slowest mode measured for that n within
     the group (exact when present, else aggregate). *)
  let base_rate = Hashtbl.create 8 in
  List.iter
    (fun cell ->
      if not (Hashtbl.mem base_rate cell.es_n) then
        Hashtbl.replace base_rate cell.es_n cell.es_rate;
      Table.add_row t
        [
          Table.Int cell.es_n;
          Table.Text (mode_name cell.es_mode);
          Table.Int cell.es_rounds;
          Table.Int cell.es_events;
          Table.Float cell.es_dt;
          Table.Float cell.es_rate;
          Table.Float (cell.es_rate /. Hashtbl.find base_rate cell.es_n);
        ])
    cells;
  print_table t

let regen_execscale () =
  section "EXECSCALE: executor rounds/sec, Exact vs Aggregate vs Skip";
  let cells = execscale_cells ~sizes:[ 100; 1_000; 10_000; 100_000 ] in
  execscale_table
    ~title:"c = 2.5, nu = 0.25, Delta = 4, Fixed-2 delays; p scales as 1/n"
    cells;
  let sparse = paperscale_cells ~sizes:[ 10_000; 100_000 ] ~rounds:400_000 in
  execscale_table
    ~title:
      "paper-scale: c = 8, nu = 0.25, Delta = 256 — almost every round empty"
    sparse;
  execscale_json (cells @ sparse) ~path:"BENCH_EXECSCALE.json"

(* Smoke mode (`--execscale-smoke`, wired into `make check`): a tiny
   EXECSCALE cell plus a sampler-scaling probe, with hard assertions —
   exits nonzero if the fast path stopped being fast. *)
let execscale_smoke () =
  section
    "EXECSCALE (smoke): aggregate must out-run exact, skip must out-run \
     aggregate 20x at the paper scale (n = 10^4)";
  let cells = execscale_cells ~sizes:[ 10_000 ] in
  let sparse = paperscale_cells ~sizes:[ 10_000 ] ~rounds:400_000 in
  execscale_json (cells @ sparse) ~path:"BENCH_EXECSCALE.json";
  let rate cells mode =
    List.find_map
      (fun c -> if c.es_mode = mode then Some c.es_rate else None)
      cells
    |> Option.get
  in
  let exact = rate cells Sim.Config.Exact
  and agg = rate cells Sim.Config.Aggregate in
  Printf.printf "exact: %.1f rounds/s, aggregate: %.1f rounds/s (%.0fx)\n"
    exact agg (agg /. exact);
  if not (agg >= exact) then begin
    print_endline "FAIL: aggregate mode slower than exact at n = 10^4";
    exit 1
  end;
  let agg_sparse = rate sparse Sim.Config.Aggregate
  and skip_sparse = rate sparse Sim.Config.Skip in
  let skip_events =
    List.find_map
      (fun c ->
        if c.es_mode = Sim.Config.Skip then Some c.es_events else None)
      sparse
    |> Option.get
  in
  Printf.printf
    "paper-scale: aggregate %.1f rounds/s, skip %.1f rounds/s (%.0fx; \
     %d events for %d rounds)\n"
    agg_sparse skip_sparse
    (skip_sparse /. agg_sparse)
    skip_events 400_000;
  if not (skip_sparse >= 20. *. agg_sparse) then begin
    print_endline
      "FAIL: skip mode below 20x aggregate at the paper-scale cell";
    exit 1
  end;
  (* Binomial.sample must not be linear in trials: two BTPE draws at equal
     mean (10^3) but 10x apart in trials should cost about the same.  A
     per-trial sampler would show a ~10x ratio; allow 5x for noise. *)
  let time_sampler ~trials ~p =
    let d = Prob.Binomial.create ~trials ~p in
    let g = Prob.Rng.create ~seed:23L in
    let reps = 200_000 in
    let t0 = Unix.gettimeofday () in
    let acc = ref 0 in
    for _ = 1 to reps do
      acc := !acc + Prob.Binomial.sample g d
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf
      "sample(trials=%d, p=%g): %.0f ns/draw (mean draw %.1f)\n" trials p
      (dt /. float_of_int reps *. 1e9)
      (float_of_int !acc /. float_of_int reps);
    dt
  in
  let small = time_sampler ~trials:10_000 ~p:0.1 in
  let large = time_sampler ~trials:100_000 ~p:0.01 in
  if large > 5. *. small then begin
    print_endline "FAIL: Binomial.sample cost grows with trials at fixed mean";
    exit 1
  end;
  print_endline "execscale smoke OK"

(* ------------------------------------------------------------------ *)
(* MARKOVSCALE: stationary solvers on the suffix ladder                *)
(* ------------------------------------------------------------------ *)

(* One row per (Delta, solver): seconds per stationary solve of the
   suffix chain C_F and the resulting states/sec, with every solver
   checked against the Eq. 37 closed form.  Dense LU factorizes the full
   (Delta+1)^2 matrix — O(states^3) — while the banded CSR routes pay
   O(nnz) (GTH censoring along the ladder) or O(nnz * iters) (power with
   Aitken extrapolation), so the sparse rows should pull away cubically
   as Delta grows.  Alphas shrink with Delta to keep abar^Delta ~ e^-4,
   the regime the paper's tables actually probe (deep suffix mass far
   from underflow). *)

type markovscale_cell = {
  ms_delta : int;
  ms_alpha : float;
  ms_states : int;
  ms_method : string;
  ms_dt : float;  (** seconds per solve (averaged when fast) *)
  ms_err : float;  (** max abs deviation from the Eq. 37 closed form *)
  ms_rate : float;  (** states per second *)
}

(* Single-shot timing of a microsecond-scale solve is all clock noise;
   rerun until ~50ms of work has accumulated and average.  The dense LU
   rows exceed the floor in one shot and are never repeated. *)
let time_solver f =
  let t0 = Unix.gettimeofday () in
  let pi = f () in
  let dt0 = Unix.gettimeofday () -. t0 in
  if dt0 >= 0.05 then (pi, dt0)
  else begin
    let reps = max 1 (int_of_float (0.05 /. Float.max dt0 1e-7)) in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    (pi, dt)
  end

let markovscale_cell ~delta ~alpha meth =
  let exact = Core.Suffix_chain.stationary_closed_form ~delta ~alpha in
  let finish label (pi, dt) =
    let states = Array.length pi in
    {
      ms_delta = delta;
      ms_alpha = alpha;
      ms_states = states;
      ms_method = label;
      ms_dt = dt;
      ms_err = Nakamoto_numerics.Linalg.max_abs_diff pi exact;
      ms_rate = float_of_int states /. Float.max dt 1e-9;
    }
  in
  match meth with
  | `Dense ->
    let chain = Core.Suffix_chain.build ~delta ~alpha in
    finish "dense-lu"
      (time_solver (fun () -> Markov.Chain.stationary_linear_solve chain))
  | `Censor ->
    let sp = Core.Suffix_chain.build_sparse ~delta ~alpha in
    finish "gth-censor"
      (time_solver (fun () ->
           Option.get (Markov.Sparse.stationary_censor sp)))
  | `Power ->
    let sp = Core.Suffix_chain.build_sparse ~delta ~alpha in
    finish "power"
      (time_solver (fun () -> Markov.Sparse.stationary_power sp))
  | `Power_pool jobs ->
    let sp = Core.Suffix_chain.build_sparse ~delta ~alpha in
    Markov.Sparse.Pool.with_pool ~jobs (fun pool ->
        finish
          (Printf.sprintf "power-x%d" jobs)
          (time_solver (fun () -> Markov.Sparse.stationary_power ~pool sp)))

let markovscale_json cells ~path =
  let oc = open_out path in
  let row c =
    Printf.sprintf
      "  {\"delta\": %d, \"alpha\": %g, \"states\": %d, \"method\": \"%s\", \
       \"seconds\": %.6g, \"states_per_sec\": %.1f, \"max_err_vs_eq37\": \
       %.3e}"
      c.ms_delta c.ms_alpha c.ms_states c.ms_method c.ms_dt c.ms_rate
      c.ms_err
  in
  Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" (List.map row cells));
  close_out oc;
  Printf.printf "(json: %s)\n" path

let markovscale_table ~title cells =
  let t =
    Table.create ~title
      ~columns:
        [
          "delta";
          "states";
          "method";
          "seconds";
          "states/s";
          "max|err| vs Eq.37";
          "speedup";
        ]
  in
  (* Speedup relative to the first solver measured for that Delta (dense
     LU when present, else the censoring baseline). *)
  let base_rate = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if not (Hashtbl.mem base_rate c.ms_delta) then
        Hashtbl.replace base_rate c.ms_delta c.ms_rate;
      Table.add_row t
        [
          Table.Int c.ms_delta;
          Table.Int c.ms_states;
          Table.Text c.ms_method;
          Table.Float c.ms_dt;
          Table.Float c.ms_rate;
          Table.Float c.ms_err;
          Table.Float (c.ms_rate /. Hashtbl.find base_rate c.ms_delta);
        ])
    cells;
  print_table t

let markovscale_cells ~points ~jobs =
  List.concat_map
    (fun (delta, alpha) ->
      (* Dense LU is O(states^3): past Delta = 500 it would dominate the
         wall clock without adding information. *)
      let methods =
        (if delta <= 500 then [ `Dense ] else [])
        @ [ `Censor; `Power; `Power_pool jobs ]
      in
      List.map (markovscale_cell ~delta ~alpha) methods)
    points

let regen_markovscale () =
  section "MARKOVSCALE: suffix-ladder stationary solves, dense vs sparse";
  let jobs = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let cells =
    markovscale_cells
      ~points:[ (64, 0.05); (500, 0.008); (2000, 0.002) ]
      ~jobs
  in
  markovscale_table
    ~title:
      "suffix chain C_F; alpha chosen so abar^Delta ~ e^-4; dense rows \
       omitted past Delta = 500"
    cells;
  markovscale_json cells ~path:"BENCH_MARKOVSCALE.json"

(* Smoke mode (`--markovscale-smoke`, wired into `make check` via
   `make markov-smoke`): the Delta = 500 column with hard assertions —
   exits nonzero if the banded solvers stop beating dense LU or drift
   off the closed form. *)
let markovscale_smoke () =
  section
    "MARKOVSCALE (smoke): GTH censoring must out-run dense LU 10x at \
     Delta = 500, all solvers within 1e-9 of Eq. 37";
  let cells = markovscale_cells ~points:[ (500, 0.008) ] ~jobs:2 in
  markovscale_json cells ~path:"BENCH_MARKOVSCALE.json";
  markovscale_table ~title:"Delta = 500, alpha = 0.008" cells;
  let rate m = (List.find (fun c -> c.ms_method = m) cells).ms_rate in
  let worst = List.fold_left (fun acc c -> Float.max acc c.ms_err) 0. cells in
  Printf.printf "worst deviation from Eq. 37 across solvers: %.3e\n" worst;
  if not (worst <= 1e-9) then begin
    print_endline "FAIL: a stationary solver drifted off the closed form";
    exit 1
  end;
  let dense = rate "dense-lu" and censor = rate "gth-censor" in
  Printf.printf "dense-lu: %.0f states/s, gth-censor: %.0f states/s (%.0fx)\n"
    dense censor (censor /. dense);
  if not (censor >= 10. *. dense) then begin
    print_endline "FAIL: sparse censoring below 10x dense LU at Delta = 500";
    exit 1
  end;
  print_endline "markovscale smoke OK"

(* ------------------------------------------------------------------ *)
(* SERVESCALE: campaign daemon throughput vs worker count              *)
(* ------------------------------------------------------------------ *)

module Serve = Nakamoto_serve

type ss_cell = {
  ss_label : string;
  ss_workers : int;
  ss_kill : bool;
  ss_shards : int;
  ss_elapsed : float;
  ss_rate : float;
  ss_granted : int;
  ss_journal : string;
}

(* Daemon-side counters come back through the telemetry.prom export;
   unlabelled counters render as "name value". *)
let prom_counter prom name =
  List.fold_left
    (fun acc line ->
      if String.length line > 0 && line.[0] <> '#' then
        match String.index_opt line ' ' with
        | Some i when String.sub line 0 i = name -> (
          match
            int_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
          with
          | Some v -> v
          | None -> acc)
        | _ -> acc
      else acc)
    0
    (String.split_on_char '\n' prom)

let servescale_spec =
  {
    Campaign.Spec.default with
    Campaign.Spec.ps = [ 0.02 ];
    ns = [ 8 ];
    deltas = [ 2 ];
    nus = [ 0.1; 0.3 ];
    trials_per_cell = 16;
    rounds = 200;
    seed = 77L;
    shard_size = 1;
  }

let servescale_read path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* One campaign through a real daemon + worker fleet, all in Domains.
   [kill] arms a Raising_worker that leases shard 0 first and dies
   computing it, so the run also pays one lease reassignment. *)
let servescale_run ~transport ~workers ~kill () =
  let quiet _ = () in
  let tmp tag suffix =
    let p = Filename.temp_file ("nakamoto_servescale_" ^ tag) suffix in
    Sys.remove p;
    p
  in
  let socket = tmp "sock" ".sock" in
  let teldir = tmp "tel" "" in
  let journal = tmp "journal" ".jsonl" in
  let port = Atomic.make 0 in
  let daemon =
    Domain.spawn (fun () ->
        try
          ignore
            (match transport with
            | `Unix ->
              Serve.Coordinator.serve ~socket ~max_campaigns:1
                ~lease_timeout:10. ~telemetry:teldir ~log:quiet ()
            | `Tcp ->
              Serve.Coordinator.serve ~tcp:("127.0.0.1", 0) ~max_campaigns:1
                ~lease_timeout:10. ~telemetry:teldir ~log:quiet
                ~on_tcp_port:(fun p -> Atomic.set port p)
                ());
          0
        with _ -> 1)
  in
  let addr =
    match transport with
    | `Unix -> Serve.Conn.Unix_path socket
    | `Tcp ->
      let rec wait n =
        if Atomic.get port = 0 then
          if n > 200 then failwith "servescale: daemon never reported a port"
          else begin
            Unix.sleepf 0.05;
            wait (n + 1)
          end
      in
      wait 0;
      Serve.Conn.Tcp ("127.0.0.1", Atomic.get port)
  in
  let spawn_worker ?fault () =
    Domain.spawn (fun () ->
        try
          ignore (Serve.Worker.run ~addr ~lease_batch:2 ?fault ~log:quiet ());
          0
        with _ -> 70)
  in
  let faulty =
    if kill then
      Some
        (spawn_worker
           ~fault:
             (Campaign.Faultplan.Raising_worker { task = 0; failures = 1 })
           ())
    else None
  in
  let t0 = Unix.gettimeofday () in
  let client =
    Domain.spawn (fun () ->
        match Serve.Client.submit ~addr ~journal servescale_spec with
        | Ok _ -> 0
        | Error _ | (exception _) -> 1)
  in
  (* The faulty worker joins the queue alone, so it necessarily holds
     shard 0 when it dies; the fleet then absorbs the requeued lease. *)
  (match faulty with
  | Some d ->
    if Domain.join d <> 70 then failwith "servescale: fault did not fire"
  | None -> ());
  let fleet = List.init workers (fun _ -> spawn_worker ()) in
  if Domain.join client <> 0 then failwith "servescale: campaign failed";
  let elapsed = Unix.gettimeofday () -. t0 in
  if Domain.join daemon <> 0 then failwith "servescale: daemon failed";
  List.iter (fun d -> ignore (Domain.join d)) fleet;
  let prom = servescale_read (Filename.concat teldir "telemetry.prom") in
  let cells = Array.length (Campaign.Spec.cells servescale_spec) in
  let shards = cells * servescale_spec.Campaign.Spec.trials_per_cell in
  let journal_bytes = servescale_read journal in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [
      socket; journal;
      Filename.concat teldir "telemetry.prom";
      Filename.concat teldir "telemetry.jsonl";
    ];
  (try Unix.rmdir teldir with Unix.Unix_error _ | Sys_error _ -> ());
  {
    ss_label =
      (match transport with `Unix -> "unix" | `Tcp -> "tcp")
      ^ if kill then "+kill" else "";
    ss_workers = workers;
    ss_kill = kill;
    ss_shards = shards;
    ss_elapsed = elapsed;
    ss_rate = float_of_int shards /. Float.max 1e-9 elapsed;
    ss_granted = prom_counter prom "serve_leases_granted_total";
    ss_journal = journal_bytes;
  }

let servescale_table ~title cells =
  let t =
    Table.create ~title
      ~columns:
        [
          "transport"; "workers"; "shards"; "elapsed s"; "shards/s";
          "leases granted";
        ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          Table.Text c.ss_label;
          Table.Int c.ss_workers;
          Table.Int c.ss_shards;
          Table.Float c.ss_elapsed;
          Table.Float c.ss_rate;
          Table.Int c.ss_granted;
        ])
    cells;
  print_table t

let regen_servescale () =
  section
    "SERVESCALE: daemon shards/s vs worker count (32 shards, 200 rounds); \
     +kill rows pay one mid-lease death and reassignment";
  let cells =
    [
      servescale_run ~transport:`Unix ~workers:1 ~kill:false ();
      servescale_run ~transport:`Unix ~workers:2 ~kill:false ();
      servescale_run ~transport:`Unix ~workers:4 ~kill:false ();
      servescale_run ~transport:`Unix ~workers:2 ~kill:true ();
      servescale_run ~transport:`Tcp ~workers:2 ~kill:false ();
      servescale_run ~transport:`Tcp ~workers:2 ~kill:true ();
    ]
  in
  servescale_table
    ~title:"one campaign per row, lease batch 2, Unix socket and TCP loopback"
    cells;
  match cells with
  | [] -> ()
  | first :: rest ->
    if List.for_all (fun c -> c.ss_journal = first.ss_journal) rest then
      print_endline
        "journal bytes identical across every transport / fleet / kill row"
    else begin
      print_endline "FAIL: journals diverged across topologies";
      exit 1
    end

(* Smoke mode (`--servescale-smoke`, wired into `make check` via
   `make serve-smoke`): one Unix row and one TCP row with a mid-lease
   kill, asserting completion, lease churn from the reassignment, and
   byte-identical journals across the two transports. *)
let servescale_smoke () =
  section
    "SERVESCALE (smoke): kill-mid-lease campaigns over both transports \
     must complete with byte-identical journals";
  let unix_cell = servescale_run ~transport:`Unix ~workers:2 ~kill:false () in
  let tcp_cell = servescale_run ~transport:`Tcp ~workers:2 ~kill:true () in
  servescale_table ~title:"32 shards, 200 rounds, lease batch 2"
    [ unix_cell; tcp_cell ];
  if unix_cell.ss_journal <> tcp_cell.ss_journal then begin
    print_endline "FAIL: unix and tcp journals diverged";
    exit 1
  end;
  if String.length unix_cell.ss_journal = 0 then begin
    print_endline "FAIL: empty journal";
    exit 1
  end;
  if unix_cell.ss_granted < unix_cell.ss_shards then begin
    print_endline "FAIL: fewer leases granted than shards";
    exit 1
  end;
  (* The killed worker's shard 0 lease must have been granted twice. *)
  if tcp_cell.ss_granted < tcp_cell.ss_shards + 1 then begin
    print_endline "FAIL: no lease churn recorded for the mid-lease kill";
    exit 1
  end;
  print_endline "servescale smoke OK"

(* ------------------------------------------------------------------ *)
(* ASSESSSCALE: certified surface queries/sec vs the exact solver      *)
(* ------------------------------------------------------------------ *)

module Surface = Nakamoto_surface

(* The box sits on the confirmation-depth plateau (rate ratio 0.02-0.04,
   depth 3 everywhere) at enumerable Delta, where the exact assessment
   pays a Delta-state stationary solve per point (the suffix-chain
   health probe) — the regime a precomputed surface exists to amortize.
   Queries draw integer Delta so every exact call pays that full cost. *)
let assessscale_box ~count =
  Surface.Grid.create
    ~p:(Surface.Grid.axis ~lo:1.6e-6 ~hi:1.9e-6 ~count ~scale:Surface.Grid.Log)
    ~n:(Surface.Grid.axis ~lo:100. ~hi:140. ~count ~scale:Surface.Grid.Log)
    ~delta:
      (Surface.Grid.axis ~lo:1800. ~hi:2048. ~count ~scale:Surface.Grid.Log)
    ~nu:
      (Surface.Grid.axis ~lo:0.012 ~hi:0.016 ~count
         ~scale:Surface.Grid.Linear)

let assessscale_queries ~count:n =
  let rng = Prob.Rng.create ~seed:41L in
  let log_range lo hi = lo *. exp (Prob.Rng.float rng *. log (hi /. lo)) in
  Array.init n (fun _ ->
      Core.Params.create
        ~p:(log_range 1.6e-6 1.9e-6)
        ~n:(log_range 100. 140.)
        ~delta:(float_of_int (1800 + Prob.Rng.int rng ~bound:249))
        ~nu:(0.012 +. (Prob.Rng.float rng *. 0.004)))

type as_cell = {
  as_count : int;
  as_cells : int;
  as_full : int;
  as_build : float;
  as_queries : int;
  as_hits : int;
  as_exact_rate : float;
  as_cached_rate : float;
}

(* One density row: build the surface, keep only queries the table can
   serve cached (interiors of fully-conclusive cells — the fair
   comparison; fallbacks would just time the exact solver twice), then
   race the two paths over the same points. *)
let assessscale_cell ~count ~queries ~exact_rate =
  let t0 = Unix.gettimeofday () in
  let table = Surface.Table.build (assessscale_box ~count) in
  let build = Unix.gettimeofday () -. t0 in
  let _, _, full = Surface.Table.conclusive_counts table in
  let cached_pts =
    Array.of_list
      (List.filter
         (fun p -> (Surface.Table.assess_cached table p).Core.Assessment.v_cached)
         (Array.to_list queries))
  in
  let reps = max 1 (50_000 / max 1 (Array.length cached_pts)) in
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for _ = 1 to reps do
    Array.iter
      (fun p ->
        let v = Surface.Table.assess_cached table p in
        if v.Core.Assessment.v_cached then incr acc)
      cached_pts
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let served = reps * Array.length cached_pts in
  assert (!acc = served);
  {
    as_count = count;
    as_cells = Surface.Grid.cell_count (Surface.Table.grid table);
    as_full = full;
    as_build = build;
    as_queries = Array.length queries;
    as_hits = Array.length cached_pts;
    as_exact_rate = exact_rate;
    as_cached_rate = float_of_int served /. dt;
  }

(* The exact rate is a property of the solver, not of any table: measure
   it once over the query set and share it across density rows. *)
let assessscale_exact_rate queries =
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  Array.iter
    (fun p ->
      match (Core.Assessment.assess p).Core.Assessment.confirmations with
      | Some c -> acc := !acc + c.Core.Confirmation.confirmations
      | None -> ())
    queries;
  let dt = Unix.gettimeofday () -. t0 in
  ignore !acc;
  float_of_int (Array.length queries) /. dt

let assessscale_json cells ~path =
  let oc = open_out path in
  let row c =
    Printf.sprintf
      "  {\"count\": %d, \"cells\": %d, \"fully_conclusive\": %d, \
       \"build_seconds\": %.6f, \"queries\": %d, \"cached_hits\": %d, \
       \"exact_qps\": %.1f, \"cached_qps\": %.1f, \"speedup\": %.1f}"
      c.as_count c.as_cells c.as_full c.as_build c.as_queries c.as_hits
      c.as_exact_rate c.as_cached_rate
      (c.as_cached_rate /. c.as_exact_rate)
  in
  Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" (List.map row cells));
  close_out oc;
  Printf.printf "(json: %s)\n" path

let assessscale_table ~title cells =
  let t =
    Table.create ~title
      ~columns:
        [
          "grid";
          "cells";
          "conclusive";
          "build s";
          "hit rate";
          "exact q/s";
          "cached q/s";
          "speedup";
        ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          Table.Text (Printf.sprintf "%d^4" c.as_count);
          Table.Int c.as_cells;
          Table.Int c.as_full;
          Table.Float c.as_build;
          Table.Float
            (float_of_int c.as_hits /. float_of_int c.as_queries);
          Table.Float c.as_exact_rate;
          Table.Float c.as_cached_rate;
          Table.Float (c.as_cached_rate /. c.as_exact_rate);
        ])
    cells;
  print_table t

let regen_assessscale () =
  section
    "ASSESSSCALE: certified surface lookups vs exact per-point solves \
     (enumerable Delta 1800-2048, depth-3 plateau)";
  let queries = assessscale_queries ~count:120 in
  let exact_rate = assessscale_exact_rate queries in
  let cells =
    List.map
      (fun count -> assessscale_cell ~count ~queries ~exact_rate)
      [ 3; 4; 6 ]
  in
  assessscale_table
    ~title:
      "integer-Delta queries; exact pays the Delta-state suffix solve, \
       cached interpolates the certified table"
    cells;
  assessscale_json cells ~path:"BENCH_ASSESSSCALE.json"

(* Smoke mode (`--assessscale-smoke`, wired into `make check` via
   `make assessscale-smoke`): one density with hard assertions — exits
   nonzero if cached queries stop being at least 20x the exact solver,
   or if the box stops certifying. *)
let assessscale_smoke () =
  section
    "ASSESSSCALE (smoke): cached surface queries must run 20x the exact \
     solver on the certified plateau";
  let queries = assessscale_queries ~count:40 in
  let exact_rate = assessscale_exact_rate queries in
  let cell = assessscale_cell ~count:4 ~queries ~exact_rate in
  assessscale_json [ cell ] ~path:"BENCH_ASSESSSCALE.json";
  Printf.printf
    "exact: %.1f q/s, cached: %.1f q/s (%.0fx), %d/%d queries served \
     cached, %d/%d cells fully conclusive\n"
    cell.as_exact_rate cell.as_cached_rate
    (cell.as_cached_rate /. cell.as_exact_rate)
    cell.as_hits cell.as_queries cell.as_full cell.as_cells;
  if cell.as_full * 2 < cell.as_cells then begin
    print_endline "FAIL: under half the box certified — grid drifted off the plateau";
    exit 1
  end;
  if cell.as_hits * 2 < cell.as_queries then begin
    print_endline "FAIL: under half the queries served cached";
    exit 1
  end;
  if not (cell.as_cached_rate >= 20. *. cell.as_exact_rate) then begin
    print_endline "FAIL: cached queries below 20x the exact solver";
    exit 1
  end;
  print_endline "assessscale smoke OK"

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel timing benches                                     *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let timing_tests () =
  let stage = Staged.stage in
  let params_small = Core.Params.create ~n:50. ~delta:3. ~p:0.01 ~nu:0.2 in
  let suffix_chain = Core.Suffix_chain.build ~delta:50 ~alpha:0.1 in
  let rng = Prob.Rng.create ~seed:1L in
  let sp_cfg = { Sim.State_process.honest = 40; adversarial = 10; p = 0.01; delta = 3 } in
  let trace =
    Sim.State_process.run_trace ~rng:(Prob.Rng.create ~seed:2L) sp_cfg
      ~rounds:10_000
  in
  let attack_cfg =
    { (Sim.Scenarios.attack_zone ~seed:3L ~nu:0.3) with Sim.Config.rounds = 500 }
  in
  let binom = Prob.Binomial.create ~trials:40 ~p:0.01 in
  [
    Test.make ~name:"fig1:row"
      (stage (fun () -> ignore (Core.Figure1.compute_row ~c:3. ())));
    Test.make ~name:"fig2:census-d8"
      (stage (fun () -> ignore (Core.Figure2.census ~delta:8 ~alpha:0.2)));
    Test.make ~name:"tab1:table"
      (stage (fun () -> ignore (Core.Table1.for_params Core.Params.bitcoin_like)));
    Test.make ~name:"rmk1:regimes"
      (stage (fun () -> ignore (Core.Theorem2.remark1_rows ())));
    Test.make ~name:"eq37:closed-d50"
      (stage (fun () ->
           ignore (Core.Suffix_chain.stationary_closed_form ~delta:50 ~alpha:0.1)));
    Test.make ~name:"eq37:solve-d50"
      (stage (fun () -> ignore (Markov.Chain.stationary_linear_solve suffix_chain)));
    Test.make ~name:"eq44:closed-rate"
      (stage (fun () -> ignore (Core.Conv_chain.convergence_rate params_small)));
    Test.make ~name:"lem:verify-chain"
      (stage (fun () ->
           ignore
             (Core.Lemmas.verify_chain ~eps1:0.5 ~eps2:0.1
                (Core.Params.of_c ~n:1e5 ~delta:1e13 ~nu:0.25 ~c:3.))));
    Test.make ~name:"thm1:numax"
      (stage (fun () ->
           ignore (Core.Bounds.theorem1_numax ~n:1e5 ~delta:1e13 ~c:2. ())));
    Test.make ~name:"sim:state-10k"
      (stage (fun () -> ignore (Sim.State_process.run ~rng sp_cfg ~rounds:10_000)));
    Test.make ~name:"sim:pattern-stream-10k"
      (stage (fun () ->
           let p = Sim.Pattern.create ~delta:3 in
           Sim.Pattern.observe_all p trace;
           ignore (Sim.Pattern.count p)));
    Test.make ~name:"sim:pattern-rescan-10k"
      (stage (fun () -> ignore (Sim.Pattern.count_by_rescan ~delta:3 trace)));
    Test.make ~name:"sim:execution-500r"
      (stage (fun () -> ignore (Sim.Execution.run attack_cfg)));
    Test.make ~name:"prob:binomial-sample"
      (stage (fun () -> ignore (Prob.Binomial.sample rng binom)));
    Test.make ~name:"prob:rng-bits64"
      (stage (fun () -> ignore (Prob.Rng.bits64 rng)));
  ]

let run_bechamel () =
  section "TIMING: Bechamel OLS estimates (monotonic clock)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let grouped = Test.make_grouped ~name:"nakamoto" (timing_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, est) :: acc)
      analyzed []
    |> List.sort compare
  in
  let t =
    Table.create ~title:"one Test.make per artifact + substrate hot paths"
      ~columns:[ "bench"; "ns/run"; "approx" ]
  in
  List.iter
    (fun (name, ns) ->
      let approx =
        if Float.is_nan ns then "-"
        else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Table.add_row t [ Table.Text name; Table.Float ns; Table.Text approx ])
    rows;
  print_table t

let () =
  if Array.exists (String.equal "--execscale-smoke") Sys.argv then begin
    execscale_smoke ();
    exit 0
  end;
  if Array.exists (String.equal "--markovscale-smoke") Sys.argv then begin
    markovscale_smoke ();
    exit 0
  end;
  if Array.exists (String.equal "--servescale-smoke") Sys.argv then begin
    servescale_smoke ();
    exit 0
  end;
  if Array.exists (String.equal "--assessscale-smoke") Sys.argv then begin
    assessscale_smoke ();
    exit 0
  end;
  regen_fig1 ();
  regen_fig2 ();
  regen_tab1 ();
  regen_rmk1 ();
  regen_eq37 ();
  regen_eq44 ();
  regen_thm1 ();
  regen_lem ();
  regen_atk ();
  regen_phase ();
  regen_scale ();
  regen_gap ();
  regen_conc ();
  regen_decay ();
  regen_ext ();
  regen_ext2 ();
  regen_conf ();
  regen_cont ();
  regen_abl ();
  regen_mcscale ();
  regen_execscale ();
  regen_markovscale ();
  regen_servescale ();
  regen_assessscale ();
  run_bechamel ();
  print_newline ();
  print_endline
    "All artifacts regenerated. See EXPERIMENTS.md for the paper-vs-measured index."
