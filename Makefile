all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	for e in quickstart figure1_repro attack_demo montecarlo_validation bound_explorer settlement markov_tour; do dune exec examples/$$e.exe; done

artifacts:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

.PHONY: all test bench examples artifacts
