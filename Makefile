all:
	dune build @all

test:
	dune runtest

# A 2-cell x 4-trial campaign on two workers whose journal must be
# byte-identical to the committed golden file: exercises the CLI, the
# worker pool, the deterministic sharding and the journal format in one
# shot.  Regenerate the golden (after a deliberate format change) by
# rerunning the dune exec line with --out test/golden/campaign_smoke.jsonl.
# The skip leg runs the same grid through the round-skipping executor at
# two worker counts: per-trial rngs make the journal a pure function of
# the spec, so --jobs must be invisible in the bytes.
campaign-smoke:
	dune exec bin/main.exe -- campaign -p 0.01 -n 40 --delta 3 --nu 0.15,0.4 \
	  --trials 4 --rounds 400 --jobs 2 --seed 7 \
	  --out _campaign_smoke.jsonl --progress-interval 0 >/dev/null
	cmp _campaign_smoke.jsonl test/golden/campaign_smoke.jsonl
	rm -f _campaign_smoke.jsonl
	dune exec bin/main.exe -- campaign -p 0.01 -n 40 --delta 3 --nu 0.15,0.4 \
	  --trials 4 --rounds 400 --jobs 2 --seed 7 --mining skip \
	  --out _campaign_smoke_skip.jsonl --progress-interval 0 >/dev/null
	cmp _campaign_smoke_skip.jsonl test/golden/campaign_smoke_skip.jsonl
	dune exec bin/main.exe -- campaign -p 0.01 -n 40 --delta 3 --nu 0.15,0.4 \
	  --trials 4 --rounds 400 --jobs 1 --seed 7 --mining skip \
	  --out _campaign_smoke_skip.jsonl --progress-interval 0 >/dev/null
	cmp _campaign_smoke_skip.jsonl test/golden/campaign_smoke_skip.jsonl
	rm -f _campaign_smoke_skip.jsonl

# Tiny EXECSCALE run: asserts the aggregate executor out-runs exact mode
# at n = 10^4 and that Binomial.sample cost is flat in the trial count at
# fixed mean.  Emits BENCH_EXECSCALE.json with the measured cells.
bench-exec-smoke:
	dune exec bench/main.exe -- --execscale-smoke

# The Delta = 500 MARKOVSCALE column with hard assertions: GTH censoring
# must out-run the dense LU stationary solve 10x and every solver must
# sit within 1e-9 of the Eq. 37 closed form.  Emits BENCH_MARKOVSCALE.json.
markov-smoke:
	dune exec bench/main.exe -- --markovscale-smoke

# Crash-recovery smoke: the campaign-smoke run, but killed by an injected
# fault and then resumed.  Leg 1 crashes after the first two fsynced
# appends (header + one cell); leg 2 tears the final cell append in half
# mid-write, which --resume must repair (truncate + log), not reject.
# Both resumed journals must be byte-identical to the committed golden —
# kill-then-resume equals never-killed, to the byte.  The injected crash
# exits 70 (EX_SOFTWARE), which each leg asserts.
FAULT_SMOKE_ARGS = campaign -p 0.01 -n 40 --delta 3 --nu 0.15,0.4 \
  --trials 4 --rounds 400 --jobs 2 --seed 7 --progress-interval 0
faultinject-smoke:
	dune exec bin/main.exe -- $(FAULT_SMOKE_ARGS) \
	  --out _fault_smoke.jsonl --fault crash-after-appends=2 \
	  >/dev/null 2>&1; test $$? -eq 70
	dune exec bin/main.exe -- $(FAULT_SMOKE_ARGS) \
	  --out _fault_smoke.jsonl --resume >/dev/null
	cmp _fault_smoke.jsonl test/golden/campaign_smoke.jsonl
	rm -f _fault_smoke.jsonl
	dune exec bin/main.exe -- $(FAULT_SMOKE_ARGS) \
	  --out _fault_smoke.jsonl --fault torn-write=3 \
	  >/dev/null 2>&1; test $$? -eq 70
	dune exec bin/main.exe -- $(FAULT_SMOKE_ARGS) \
	  --out _fault_smoke.jsonl --resume >/dev/null 2>_fault_smoke.log
	grep -q "torn tail" _fault_smoke.log
	cmp _fault_smoke.jsonl test/golden/campaign_smoke.jsonl
	rm -f _fault_smoke.jsonl _fault_smoke.log

# Telemetry golden: the campaign-smoke grid on one worker with the
# zero clock (every span records 0s, so durations are byte-stable) and
# --telemetry; the prom exposition must match its golden byte-for-byte,
# and the JSONL must match after scrubbing the meta line's wall-clock
# emitted_at stamp.  Single-worker because at jobs >= 2 the
# domain="k" shard labels depend on scheduling.  Regenerate after a
# deliberate format change by rerunning the dune exec line and copying
# _telemetry_smoke/ over test/golden/telemetry_smoke.{prom,jsonl}
# (scrub emitted_at with the sed below first).
telemetry-smoke:
	NAKAMOTO_TELEMETRY_CLOCK=zero dune exec bin/main.exe -- campaign \
	  -p 0.01 -n 40 --delta 3 --nu 0.15,0.4 --trials 4 --rounds 400 \
	  --jobs 1 --seed 7 --out _telemetry_smoke.jsonl \
	  --telemetry _telemetry_smoke --progress-interval 0 >/dev/null
	cmp _telemetry_smoke.jsonl test/golden/campaign_smoke.jsonl
	cmp _telemetry_smoke/telemetry.prom test/golden/telemetry_smoke.prom
	sed 's/"emitted_at":[0-9.e+-]*/"emitted_at":0/' \
	  _telemetry_smoke/telemetry.jsonl > _telemetry_smoke/scrubbed.jsonl
	cmp _telemetry_smoke/scrubbed.jsonl test/golden/telemetry_smoke.jsonl
	rm -rf _telemetry_smoke.jsonl _telemetry_smoke

# Three-process serve smoke, once per transport: a daemon
# (--max-campaigns 1, so it exits when the campaign completes), one
# worker leasing in batches, and a client submission of the
# campaign-smoke grid over the wire.  Both the Unix-socket leg and the
# TCP-loopback leg must produce journals byte-identical to the same
# committed golden the CLI smoke uses: the transport and topology are
# invisible in the artifact.  The SERVESCALE smoke then drives a
# Domain-hosted fleet with a mid-lease kill over both transports from
# inside the bench binary.  The binaries are run directly from _build so
# the processes don't contend for the dune lock.
serve-smoke:
	dune build bin/main.exe bench/main.exe
	rm -f _serve_smoke.sock _serve_smoke.jsonl _serve_smoke_tcp.jsonl
	_build/default/bin/main.exe serve --socket _serve_smoke.sock \
	  --max-campaigns 1 >/dev/null & \
	_build/default/bin/main.exe worker --connect _serve_smoke.sock \
	  --lease-batch 2 >/dev/null & \
	_build/default/bin/main.exe campaign -p 0.01 -n 40 --delta 3 \
	  --nu 0.15,0.4 --trials 4 --rounds 400 --seed 7 \
	  --connect _serve_smoke.sock --out _serve_smoke.jsonl \
	  --progress-interval 0 >/dev/null && wait
	cmp _serve_smoke.jsonl test/golden/campaign_smoke.jsonl
	_build/default/bin/main.exe serve --listen 127.0.0.1:17811 \
	  --max-campaigns 1 >/dev/null & \
	_build/default/bin/main.exe worker --connect-tcp 127.0.0.1:17811 \
	  >/dev/null & \
	_build/default/bin/main.exe campaign -p 0.01 -n 40 --delta 3 \
	  --nu 0.15,0.4 --trials 4 --rounds 400 --seed 7 \
	  --connect-tcp 127.0.0.1:17811 --out _serve_smoke_tcp.jsonl \
	  --progress-interval 0 >/dev/null && wait
	cmp _serve_smoke_tcp.jsonl test/golden/campaign_smoke.jsonl
	_build/default/bench/main.exe --servescale-smoke
	rm -f _serve_smoke.sock _serve_smoke.jsonl _serve_smoke_tcp.jsonl

# Surface regeneration determinism: the same box built twice on one
# domain and once on two must be byte-identical, and must match the
# committed golden (bin + canonical-JSON header) byte-for-byte — the
# file is a pure function of the build inputs, so a drifting fingerprint
# means the certifier or the format changed.  Regenerate after a
# deliberate change by rerunning the first dune exec line with
# --out test/golden/surface_smoke.bin and piping `surface info --header`
# over test/golden/surface_smoke_header.json.
SURFACE_SMOKE_BOX = -p 1.1e-4:1.4e-4:3:log -n 100:140:3:log \
  --delta 28:36:3:log --nu 0.012:0.016:3:lin
surface-smoke:
	dune exec bin/main.exe -- surface build $(SURFACE_SMOKE_BOX) \
	  --out _surface_smoke.bin >/dev/null
	dune exec bin/main.exe -- surface build $(SURFACE_SMOKE_BOX) \
	  --out _surface_smoke_b.bin >/dev/null
	cmp _surface_smoke.bin _surface_smoke_b.bin
	dune exec bin/main.exe -- surface build $(SURFACE_SMOKE_BOX) --jobs 2 \
	  --out _surface_smoke_b.bin >/dev/null
	cmp _surface_smoke.bin _surface_smoke_b.bin
	cmp _surface_smoke.bin test/golden/surface_smoke.bin
	dune exec bin/main.exe -- surface info _surface_smoke.bin --header \
	  > _surface_smoke_header.json
	cmp _surface_smoke_header.json test/golden/surface_smoke_header.json
	rm -f _surface_smoke.bin _surface_smoke_b.bin _surface_smoke_header.json

# ASSESSSCALE smoke: cached surface queries must run at least 20x the
# exact solver on the certified depth-3 plateau at enumerable Delta
# (where each exact call pays a Delta-state stationary solve).  Emits
# BENCH_ASSESSSCALE.json with the measured cell.
assessscale-smoke:
	dune exec bench/main.exe -- --assessscale-smoke

# The property tier's oracle-focused run: the differential oracle (50
# generated scenarios through Exact / Aggregate / state-process lanes),
# the stationary cross-checks, and the Δ-ring vs queue-lane equivalence.
# The telemetry leg pins the snapshot-merge monoid laws (1000 cases per
# instrument) and the interarrival-vs-geometric distribution check.  The
# markov leg runs 1000 random banded ergodic chains through the sparse
# solvers against the dense LU and power references (1e-12 agreement),
# plus CSR round-trip and parallel bit-identity properties.
# Failures print a PROPTEST_SEED / PROPTEST_REPLAY one-liner; see
# DESIGN.md §8.
proptest-smoke:
	dune exec test/prop/prop_main.exe -- test oracle
	dune exec test/prop/prop_main.exe -- test telemetry
	dune exec test/prop/prop_main.exe -- test markov

# Opt-in statistical soak: every property rerun with PROPTEST_TRIALS=500
# via the @soak alias.  Not part of `check` — run before releases or when
# touching an executor or sampler.
soak:
	dune build @soak

check: all test campaign-smoke faultinject-smoke telemetry-smoke \
  serve-smoke bench-exec-smoke markov-smoke surface-smoke \
  assessscale-smoke proptest-smoke

bench:
	dune exec bench/main.exe

examples:
	for e in quickstart figure1_repro attack_demo montecarlo_validation bound_explorer settlement markov_tour; do dune exec examples/$$e.exe; done

artifacts:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

.PHONY: all test bench examples artifacts campaign-smoke faultinject-smoke \
  telemetry-smoke serve-smoke bench-exec-smoke markov-smoke surface-smoke \
  assessscale-smoke proptest-smoke soak check
